"""Operator-level execution profiling (EXPLAIN ANALYZE-style).

Wraps every operator of a physical plan with counters and timers, runs
the plan, and reports per-operator rows (bag cardinality — multiplicity
counted — and distinct stream pairs) plus exclusive time.  This is how
the examples and benches attribute cost to individual operators, e.g.
showing that the unpushed plan's product emits 450k pairs while the
pushed plan's join emits a few hundred.

Usage::

    from repro.engine.profiler import execute_profiled
    result, profile = execute_profiled(expr, env)
    print(profile)
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.algebra import AlgebraExpr
from repro.engine.iterators import Pairs, PhysicalOp, collect
from repro.engine.planner import plan
from repro.relation import Relation

__all__ = ["OperatorProfile", "ProfileReport", "ProfilingOp", "execute_profiled"]


class OperatorProfile:
    """Counters for one operator in the plan."""

    __slots__ = ("label", "depth", "pairs_out", "rows_out", "seconds")

    def __init__(self, label: str, depth: int) -> None:
        self.label = label
        self.depth = depth
        #: (tuple, count) pairs emitted (stream length).
        self.pairs_out = 0
        #: bag cardinality emitted (sum of counts).
        self.rows_out = 0
        #: inclusive wall time spent producing this operator's stream.
        self.seconds = 0.0


class ProfilingOp(PhysicalOp):
    """A transparent wrapper that counts and times a wrapped operator."""

    __slots__ = ("inner", "profile", "_children")

    def __init__(
        self, inner: PhysicalOp, profile: OperatorProfile, children: Tuple["ProfilingOp", ...]
    ) -> None:
        super().__init__(inner.schema)
        self.inner = inner
        self.profile = profile
        self._children = children

    def children(self) -> Tuple[PhysicalOp, ...]:
        return self._children

    def execute(self, env: Dict[str, Relation]) -> Pairs:
        profile = self.profile
        start = time.perf_counter()
        # Rebind the inner operator's children to the profiled versions
        # happens at wrap time; here we just instrument the stream.
        for row, count in self.inner.execute(env):
            profile.seconds += time.perf_counter() - start
            profile.pairs_out += 1
            profile.rows_out += count
            yield row, count
            start = time.perf_counter()
        profile.seconds += time.perf_counter() - start

    def label(self) -> str:
        return self.inner.label()


class ProfileReport:
    """All operator profiles of one execution, in plan order."""

    def __init__(self, profiles: List[OperatorProfile]) -> None:
        self.profiles = profiles

    def total_pairs(self) -> int:
        return sum(profile.pairs_out for profile in self.profiles)

    def by_label(self) -> Dict[str, OperatorProfile]:
        """First profile per label (handy in tests)."""
        table: Dict[str, OperatorProfile] = {}
        for profile in self.profiles:
            table.setdefault(profile.label, profile)
        return table

    def __str__(self) -> str:
        lines = [
            f"{'operator':<42} {'pairs':>10} {'rows':>10} {'ms':>9}",
            "-" * 75,
        ]
        for profile in self.profiles:
            indent = "  " * profile.depth
            label = f"{indent}{profile.label}"
            lines.append(
                f"{label:<42} {profile.pairs_out:>10} "
                f"{profile.rows_out:>10} {profile.seconds * 1000:>9.2f}"
            )
        return "\n".join(lines)


def _wrap(op: PhysicalOp, depth: int, sink: List[OperatorProfile]) -> ProfilingOp:
    """Recursively wrap a plan; children are wrapped and re-attached."""
    profile = OperatorProfile(op.label(), depth)
    sink.append(profile)
    wrapped_children = tuple(
        _wrap(child, depth + 1, sink) for child in op.children()
    )
    if wrapped_children:
        # Rebuild the inner operator so it pulls from the wrapped children.
        op = _rebuild_with_children(op, wrapped_children)
    return ProfilingOp(op, profile, wrapped_children)


def _rebuild_with_children(
    op: PhysicalOp, children: Tuple[PhysicalOp, ...]
) -> PhysicalOp:
    """A shallow copy of ``op`` with its child slots pointing at ``children``.

    Physical operators keep children in conventional slot names; this
    walks the slots rather than requiring every operator to implement a
    with_children protocol.
    """
    import copy

    clone = copy.copy(op)
    child_iter = iter(children)
    for slot in ("child", "left", "right"):
        if hasattr(clone, slot):
            current = getattr(clone, slot)
            if isinstance(current, PhysicalOp):
                setattr(clone, slot, next(child_iter))
    return clone


def execute_profiled(
    expr: AlgebraExpr, env: Dict[str, Relation]
) -> Tuple[Relation, ProfileReport]:
    """Plan, instrument, and run ``expr``; return (result, profile)."""
    profiles: List[OperatorProfile] = []
    instrumented = _wrap(plan(expr), 0, profiles)
    result = collect(instrumented, env)
    return result, ProfileReport(profiles)
