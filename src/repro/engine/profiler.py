"""Operator-level execution profiling (EXPLAIN ANALYZE-style).

Wraps every operator of a physical plan with counters and timers, runs
the plan, and reports per-operator rows (bag cardinality — multiplicity
counted — and distinct stream pairs) plus inclusive and exclusive time.
This is how the examples and benches attribute cost to individual
operators, e.g. showing that the unpushed plan's product emits 450k
pairs while the pushed plan's join emits a few hundred.

The profiler and the observability layer (:mod:`repro.obs`) share one
data model: :func:`profile_plan` instruments a plan, and
:meth:`ProfileReport.emit_metrics` folds the per-operator counts into a
metrics registry — so EXPLAIN ANALYZE output and the session-wide
``operator.*`` counters are two views of the same numbers.

Usage::

    from repro.engine.profiler import execute_profiled
    result, profile = execute_profiled(expr, env)
    print(profile)
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.algebra import AlgebraExpr
from repro.engine.iterators import Pairs, PhysicalOp, collect
from repro.obs.metrics import MetricsRegistry
from repro.relation import Relation

__all__ = [
    "OperatorProfile",
    "ProfileReport",
    "ProfilingOp",
    "execute_profiled",
    "profile_plan",
]


class OperatorProfile:
    """Counters for one operator in the plan."""

    __slots__ = (
        "label", "op_class", "depth", "index", "child_indexes",
        "pairs_out", "rows_out", "seconds", "invocations",
    )

    def __init__(
        self, label: str, op_class: str, depth: int, index: int
    ) -> None:
        self.label = label
        #: Operator class (e.g. ``hash-join``), the metrics label.
        self.op_class = op_class
        self.depth = depth
        #: Plan pre-order position — the report's stable ordering key.
        self.index = index
        #: Indexes of this operator's direct children in the report.
        self.child_indexes: List[int] = []
        #: (tuple, count) pairs emitted (stream length).
        self.pairs_out = 0
        #: bag cardinality emitted (sum of counts).
        self.rows_out = 0
        #: inclusive wall time spent producing this operator's stream.
        self.seconds = 0.0
        #: times the operator's stream was opened (re-executed subtrees).
        self.invocations = 0


class ProfilingOp(PhysicalOp):
    """A transparent wrapper that counts and times a wrapped operator."""

    __slots__ = ("inner", "profile", "_children")

    def __init__(
        self, inner: PhysicalOp, profile: OperatorProfile, children: Tuple["ProfilingOp", ...]
    ) -> None:
        super().__init__(inner.schema)
        self.inner = inner
        self.profile = profile
        self._children = children

    def children(self) -> Tuple[PhysicalOp, ...]:
        return self._children

    def execute(self, env: Dict[str, Relation]) -> Pairs:
        profile = self.profile
        profile.invocations += 1
        start = time.perf_counter()
        # Rebind the inner operator's children to the profiled versions
        # happens at wrap time; here we just instrument the stream.
        for row, count in self.inner.execute(env):
            profile.seconds += time.perf_counter() - start
            profile.pairs_out += 1
            profile.rows_out += count
            yield row, count
            start = time.perf_counter()
        profile.seconds += time.perf_counter() - start

    def label(self) -> str:
        return self.inner.label()


class ProfileReport:
    """All operator profiles of one execution.

    Profiles are kept in *plan pre-order* (root first, each operator
    before its subtree) regardless of the order the caller collected
    them in — the rendering, ``by_label``, and metrics emission are all
    deterministic for a given plan shape.
    """

    def __init__(self, profiles: List[OperatorProfile]) -> None:
        self.profiles = sorted(profiles, key=lambda profile: profile.index)

    def total_pairs(self) -> int:
        return sum(profile.pairs_out for profile in self.profiles)

    def total_rows(self) -> int:
        return sum(profile.rows_out for profile in self.profiles)

    @property
    def total_seconds(self) -> float:
        """Wall time of the whole execution (the root's inclusive time)."""
        if not self.profiles:
            return 0.0
        return self.profiles[0].seconds

    def exclusive_seconds(self, profile: OperatorProfile) -> float:
        """Time spent in ``profile`` itself, excluding its children.

        Inclusive minus the children's inclusive time, clamped at 0 —
        on very fast children, timer granularity can make the naive
        subtraction negative, which is noise, not anti-time.
        """
        by_index = {entry.index: entry for entry in self.profiles}
        child_time = sum(
            by_index[index].seconds
            for index in profile.child_indexes
            if index in by_index
        )
        return max(0.0, profile.seconds - child_time)

    def by_label(self) -> Dict[str, OperatorProfile]:
        """First profile per label, in plan order (handy in tests)."""
        table: Dict[str, OperatorProfile] = {}
        for profile in self.profiles:
            table.setdefault(profile.label, profile)
        return table

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Fold the per-operator counts into a metrics registry.

        Increments ``operator.rows`` / ``operator.pairs`` counters
        labelled by operator class and observes per-operator wall time
        in the ``operator.seconds`` histogram — the shared data model
        between EXPLAIN ANALYZE and the metrics layer.
        """
        for profile in self.profiles:
            registry.counter("operator.rows", op=profile.op_class).inc(
                profile.rows_out
            )
            registry.counter("operator.pairs", op=profile.op_class).inc(
                profile.pairs_out
            )
            registry.histogram("operator.seconds", op=profile.op_class).observe(
                profile.seconds
            )

    def operator_records(self) -> List[Dict[str, object]]:
        """JSON-friendly per-operator rows (trace span attributes)."""
        return [
            {
                "label": profile.label,
                "op": profile.op_class,
                "depth": profile.depth,
                "pairs": profile.pairs_out,
                "rows": profile.rows_out,
                "seconds": profile.seconds,
                "invocations": profile.invocations,
            }
            for profile in self.profiles
        ]

    def __str__(self) -> str:
        lines = [
            f"{'operator':<42} {'pairs':>10} {'rows':>10} {'ms':>9} {'excl ms':>9}",
            "-" * 85,
        ]
        for profile in self.profiles:
            indent = "  " * profile.depth
            label = f"{indent}{profile.label}"
            lines.append(
                f"{label:<42} {profile.pairs_out:>10} "
                f"{profile.rows_out:>10} {profile.seconds * 1000:>9.2f} "
                f"{self.exclusive_seconds(profile) * 1000:>9.2f}"
            )
        return "\n".join(lines)


def _wrap(op: PhysicalOp, depth: int, sink: List[OperatorProfile]) -> ProfilingOp:
    """Recursively wrap a plan; children are wrapped and re-attached."""
    profile = OperatorProfile(op.label(), op.op_class(), depth, len(sink))
    sink.append(profile)
    wrapped_children = tuple(
        _wrap(child, depth + 1, sink) for child in op.children()
    )
    profile.child_indexes = [
        child.profile.index for child in wrapped_children
    ]
    if wrapped_children:
        # Rebuild the inner operator so it pulls from the wrapped children.
        op = _rebuild_with_children(op, wrapped_children)
    return ProfilingOp(op, profile, wrapped_children)


def _rebuild_with_children(
    op: PhysicalOp, children: Tuple[PhysicalOp, ...]
) -> PhysicalOp:
    """A shallow copy of ``op`` with its child slots pointing at ``children``.

    Physical operators keep children in conventional slot names; this
    walks the slots rather than requiring every operator to implement a
    with_children protocol.
    """
    import copy

    clone = copy.copy(op)
    child_iter = iter(children)
    for slot in ("child", "left", "right"):
        if hasattr(clone, slot):
            current = getattr(clone, slot)
            if isinstance(current, PhysicalOp):
                setattr(clone, slot, next(child_iter))
    return clone


def profile_plan(
    physical: PhysicalOp,
) -> Tuple[ProfilingOp, List[OperatorProfile]]:
    """Instrument an already-planned operator tree.

    Returns the wrapped plan and its (pre-order) profile list; running
    the wrapped plan fills the profiles in.  Shared by
    :func:`execute_profiled` and the tracing path in
    :func:`repro.engine.planner.execute`.
    """
    profiles: List[OperatorProfile] = []
    instrumented = _wrap(physical, 0, profiles)
    return instrumented, profiles


def execute_profiled(
    expr: AlgebraExpr,
    env: Dict[str, Relation],
    registry: Optional[MetricsRegistry] = None,
    engine: str = "pairs",
) -> Tuple[Relation, ProfileReport]:
    """Plan, instrument, and run ``expr``; return (result, profile).

    With ``registry``, the per-operator counts are also folded into the
    given metrics registry (see :meth:`ProfileReport.emit_metrics`).
    ``engine`` selects the operator family (``"pairs"``/``"vector"``);
    either way the counters observe the pair-stream view of every
    operator, so profiles are comparable across engines.
    """
    from repro.engine.planner import plan_physical

    instrumented, profiles = profile_plan(plan_physical(expr, engine=engine))
    result = collect(instrumented, env)
    report = ProfileReport(profiles)
    if registry is not None:
        report.emit_metrics(registry)
    return result, report
