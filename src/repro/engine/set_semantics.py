"""A set-semantics evaluator — the paper's foil.

The introduction gives two reasons for bag semantics: duplicates are
*meaningful* in applications, and duplicate removal is *expensive*.
Example 3.2 sharpens the first into a correctness argument: under set
semantics, inserting the (otherwise harmless) projection

    π_(alcperc, country)

under a per-country AVG collapses equal (alcperc, country) pairs and
*changes the aggregate* — "thereby causing incorrect aggregate values".

This module implements exactly that foil: :func:`evaluate_set` mirrors
the reference evaluator but forces every operator's result to be
duplicate-free, the way a strictly set-based relational model behaves.
Benches E6/E7 run both evaluators side by side: E6 shows the wrong
averages, E7 charges the δ-after-every-operator cost.

Note the asymmetry: bag→set needs δ everywhere; bag semantics needs no
extra machinery at all.  That asymmetry *is* the paper's cost argument.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra import (
    AlgebraExpr,
    Difference,
    ExtendedProject,
    GroupBy,
    Intersect,
    Join,
    LiteralRelation,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.errors import EvaluationError, UnknownRelationError
from repro.relation import Relation

__all__ = ["evaluate_set"]


def evaluate_set(expr: AlgebraExpr, env: Mapping[str, Relation]) -> Relation:
    """Evaluate ``expr`` as a strictly set-based model would.

    Every input relation and every intermediate result is deduplicated.
    Aggregates then see at most one copy of each tuple — which is
    precisely why Example 3.2's second formulation goes wrong.
    """
    if isinstance(expr, RelationRef):
        try:
            return env[expr.name].distinct()
        except KeyError:
            raise UnknownRelationError(expr.name) from None
    if isinstance(expr, LiteralRelation):
        return expr.relation.distinct()
    if isinstance(expr, Union):
        # Set union: max-union (a tuple is in the union once).
        left = evaluate_set(expr.left, env)
        right = evaluate_set(expr.right, env)
        return Relation.from_multiset(
            left.schema, left.tuples.max_union(right.tuples)
        )
    if isinstance(expr, Difference):
        left = evaluate_set(expr.left, env)
        right = evaluate_set(expr.right, env)
        return left.difference(right)
    if isinstance(expr, Product):
        left = evaluate_set(expr.left, env)
        right = evaluate_set(expr.right, env)
        return left.product(right)  # product of sets is duplicate-free
    if isinstance(expr, Intersect):
        left = evaluate_set(expr.left, env)
        right = evaluate_set(expr.right, env)
        return left.intersection(right)
    if isinstance(expr, Join):
        predicate = expr.condition.bind(expr.schema)
        left = evaluate_set(expr.left, env)
        right = evaluate_set(expr.right, env)
        return left.join(right, predicate)
    if isinstance(expr, Select):
        predicate = expr.condition.bind(expr.operand.schema)
        return evaluate_set(expr.operand, env).select(predicate)
    if isinstance(expr, Project):
        # THE defining difference: set projection removes duplicates.
        return evaluate_set(expr.operand, env).project(expr.positions).distinct()
    if isinstance(expr, ExtendedProject):
        operand_schema = expr.operand.schema
        functions = [
            expression.bind(operand_schema) for expression in expr.expressions
        ]
        return (
            evaluate_set(expr.operand, env)
            .extended_project(functions, expr.schema)
            .distinct()
        )
    if isinstance(expr, Unique):
        return evaluate_set(expr.operand, env).distinct()
    if isinstance(expr, GroupBy):
        operand = evaluate_set(expr.operand, env)
        return operand.group_by(
            list(expr.positions), expr.aggregate, expr.param_position
        )
    handler = getattr(expr, "reference_evaluate", None)
    if handler is not None:
        return handler(env, evaluate_set).distinct()
    raise EvaluationError(f"no set-semantics rule for {type(expr).__name__}")
