"""Tests for EXPLAIN ANALYZE (repro.obs.analyze) and its feedback loop.

Covers the instrumented pipeline (estimate vs. actual per operator,
misestimate flagging, consolidation counts), the statistics feedback
via ``StatisticsCatalog.record_actuals`` — including the differential
test that a deliberately mis-statisticed join chain is re-planned after
feedback — and the wiring through ``tools.explain_analyze``, ``Session``,
the XRA interpreter, and the CLI's ``.analyze``.
"""

import io
import json

import pytest

from repro import obs
from repro.algebra import Join, Product, RelationRef, Select, Unique
from repro.cli import Shell
from repro.engine.statistics import StatisticsCatalog, TableStats, estimate_cardinality
from repro.language import Session
from repro.obs.analyze import AnalyzeReport, analyze
from repro.tools import explain_analyze
from repro.workloads import join_chain_relations, tiny_beer_database
from repro.xra import XRAInterpreter


@pytest.fixture(autouse=True)
def _isolate_obs():
    obs.reset()
    yield
    obs.reset()


def chain(count, sizes, distincts, seed):
    """A join-chain workload: (env, refs) over r1..rN."""
    relations = join_chain_relations(count, sizes, distincts, seed=seed)
    env = {relation.schema.name: relation for relation in relations}
    refs = [
        RelationRef(relation.schema.name, relation.schema)
        for relation in relations
    ]
    return env, refs


# ---------------------------------------------------------------------------
# The analyze pipeline
# ---------------------------------------------------------------------------


class TestAnalyzePipeline:
    def test_every_operator_has_actuals_and_estimates(self):
        env, refs = chain(2, [50, 10], [5, 4, 4], seed=1)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        report = analyze(expr, env)
        assert isinstance(report, AnalyzeReport)
        assert len(report.operators) >= 3  # join + two scans
        for op in report.operators:
            assert op.est_rows is not None
            assert op.rows >= 0
            assert op.invocations >= 1
            assert op.fingerprint
        # Root actuals match the materialised result.
        assert report.operators[0].rows == report.result_rows
        assert report.result is not None
        assert len(report.result) == report.result_rows

    def test_exact_catalog_estimates_scans_exactly(self):
        env, refs = chain(2, [30, 10], [5, 4, 4], seed=2)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        report = analyze(expr, env)  # default: exact stats from env
        scans = [op for op in report.operators if op.op_class == "scan"]
        assert scans
        for scan in scans:
            assert scan.est_rows == scan.rows
            assert scan.relation in env

    def test_misestimates_flagged_at_threshold(self):
        env, refs = chain(2, [200, 10], [10, 4, 4], seed=3)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        # An empty catalog guesses 1000 rows per table: r2 is off 100x.
        report = analyze(expr, env, catalog=StatisticsCatalog())
        flagged = report.flagged()
        assert flagged
        assert all(op.misestimate_factor >= report.threshold for op in flagged)
        assert "⚠" in report.render()

    def test_accurate_run_flags_nothing_on_scans(self):
        env, refs = chain(2, [30, 10], [5, 4, 4], seed=4)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        report = analyze(expr, env)
        scans = [op for op in report.operators if op.op_class == "scan"]
        assert all(not op.flagged() for op in scans)

    def test_consolidation_counted_on_distinct(self):
        env, refs = chain(1, [40], [3, 3], seed=5)
        report = analyze(Unique(refs[0]), env)
        distinct = [op for op in report.operators if op.op_class == "distinct"]
        assert len(distinct) == 1
        op = distinct[0]
        assert op.rows_in == 40
        assert op.consolidated == op.rows_in - op.rows
        assert op.consolidated > 0  # only 3 distinct values in 40 rows
        assert f"dedup=-{op.consolidated:,}" in report.render()

    def test_report_is_json_serializable(self):
        env, refs = chain(2, [20, 10], [4, 3, 3], seed=6)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        report = analyze(expr, env)
        payload = json.loads(report.to_json())
        assert payload["event"] == "analyze"
        assert payload["rows"] == report.result_rows
        assert payload["rewrites"]  # select-over-product fuses to a join
        assert len(payload["operators"]) == len(report.operators)
        for record in payload["operators"]:
            assert {"label", "op", "rows", "seconds", "invocations"} <= set(record)

    def test_rewrite_trace_recorded(self):
        env, refs = chain(2, [20, 10], [4, 3, 3], seed=7)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        report = analyze(expr, env)
        assert "select-product-to-join" in report.rewrites
        assert "⋈" in report.optimized

    def test_analyze_metrics_accumulate_without_tracing(self):
        env, refs = chain(1, [10], [3, 3], seed=8)
        assert not obs.enabled()
        analyze(refs[0], env)
        registry = obs.metrics()
        assert registry.total("analyze.runs") == 1
        assert registry.total("analyze.operators") >= 1
        assert registry.histogram("analyze.seconds").count == 1

    def test_misestimate_metric_labelled_by_op_class(self):
        env, refs = chain(1, [500], [5, 5], seed=9)
        analyze(refs[0], env, catalog=StatisticsCatalog())  # 1000 vs 500: 2x, fine
        assert obs.metrics().total("plan.misestimate") == 0
        analyze(
            Select("%1 = 1", refs[0]),
            env,
            catalog=StatisticsCatalog({"r1": TableStats(2)}),
        )
        assert obs.metrics().total("plan.misestimate") >= 1

    def test_cache_provenance(self):
        db = tiny_beer_database()
        session = Session(db, cache=True)
        beer = session.relation("beer")
        expr = beer.select("%3 > 5")
        session.query(expr)  # populate the result cache
        report = analyze(
            expr, db.snapshot(), cache=session.cache
        )
        assert report.cache is not None
        assert report.cache["result_cached"] is True
        assert "cache: result cached" in report.render()


# ---------------------------------------------------------------------------
# Estimate-vs-actual feedback
# ---------------------------------------------------------------------------


class TestFeedback:
    def test_record_actuals_updates_observed_and_tables(self):
        env, refs = chain(2, [60, 10], [5, 4, 4], seed=10)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        catalog = StatisticsCatalog()  # knows nothing
        report = analyze(expr, env, catalog=catalog)
        recorded = catalog.record_actuals(report)
        assert recorded == len(report.operators)
        assert catalog.tables["r1"].row_count == 60
        assert catalog.tables["r2"].row_count == 10
        # Actuals are keyed on the optimizer normal form (the tree that
        # actually ran); its estimate now equals the observed actual.
        from repro.optimizer import optimize

        normalized = optimize(expr, catalog)
        assert estimate_cardinality(normalized, catalog) == report.result_rows

    def test_observed_cardinality_is_cheap_when_empty(self):
        catalog = StatisticsCatalog()
        env, refs = chain(1, [5], [2, 2], seed=11)
        assert catalog.observed_cardinality(refs[0]) is None

    def test_feedback_clears_flags_on_rerun(self):
        env, refs = chain(2, [200, 10], [10, 4, 4], seed=12)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        catalog = StatisticsCatalog()
        first = analyze(expr, env, catalog=catalog, record=True)
        assert first.flagged()
        second = analyze(expr, env, catalog=catalog)
        assert not second.flagged()
        assert second.result == first.result

    def test_record_actuals_changes_join_plan(self):
        """The acceptance differential: a deliberately mis-statisticed
        join chain is re-associated once actuals flow back."""
        env, refs = chain(3, [2000, 10, 10], [50, 5, 5, 5], seed=13)
        expr = Join(
            Join(refs[0], refs[1], "%2 = %3"), refs[2], "%4 = %5"
        )
        # The catalog believes r1 is tiny; it actually has 2000 rows.
        lying = StatisticsCatalog(
            {"r1": TableStats(2), "r2": TableStats(10), "r3": TableStats(10)}
        )
        before = analyze(expr, env, catalog=lying)
        assert before.flagged()  # the lie is visible at runtime
        lying.record_actuals(before)
        after = analyze(expr, env, catalog=lying)
        # Same bag result (Theorem 3.3 — associativity), different plan.
        assert after.result == before.result
        assert after.optimized != before.optimized

    def test_explain_analyze_tool_records_on_request(self):
        env, refs = chain(2, [40, 10], [5, 4, 4], seed=14)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        catalog = StatisticsCatalog()
        report = explain_analyze(expr, env, catalog=catalog, record=True)
        assert isinstance(report, AnalyzeReport)
        assert catalog.observed  # actuals were folded in


# ---------------------------------------------------------------------------
# Session / XRA / CLI wiring
# ---------------------------------------------------------------------------


class TestSessionAnalyze:
    def test_explain_analyze_matches_query(self):
        db = tiny_beer_database()
        session = Session(db)
        expr = session.relation("beer").select("%3 > 5")
        report = session.explain_analyze(expr)
        assert report.result == session.query(expr)
        assert session.last_analyze is report

    def test_analyze_mode_query_returns_relation(self):
        db = tiny_beer_database()
        session = Session(db, analyze=True)
        expr = session.relation("beer").select("%3 > 5")
        plain = Session(db).query(expr)
        assert session.query(expr) == plain
        assert session.last_analyze is not None

    def test_session_feedback_accumulates_across_queries(self):
        db = tiny_beer_database()
        session = Session(db, analyze=True)
        expr = session.relation("beer").select("%3 > 5")
        session.query(expr)
        catalog = session.analyze_catalog()
        assert catalog.observed
        assert estimate_cardinality(expr, catalog) == len(session.query(expr))

    def test_analyze_mode_logs_kind_and_fingerprint(self):
        from repro.obs import QueryLog

        db = tiny_beer_database()
        session = Session(db, analyze=True, query_log=QueryLog())
        session.query(session.relation("beer").select("%3 > 5"))
        record = session.query_log.records[-1]
        assert record.kind == "analyze"
        assert record.fingerprint
        assert record.to_record()["fingerprint"] == record.fingerprint

    def test_reference_engine_rejects_analyze(self):
        db = tiny_beer_database()
        session = Session(db, use_physical_engine=False)
        with pytest.raises(ValueError):
            session.set_analyze(True)
        with pytest.raises(ValueError):
            session.explain_analyze(session.relation("beer"))

    def test_query_log_fingerprint_matches_cache_key(self):
        from repro.obs import QueryLog

        db = tiny_beer_database()
        session = Session(db, cache=True, query_log=QueryLog())
        expr = session.relation("beer").select("%3 > 5")
        session.query(expr)
        record = session.query_log.records[-1]
        assert session.cache.result_cached(record.fingerprint)


class TestXraAnalyze:
    def test_script_reports_collected(self):
        interp = XRAInterpreter(tiny_beer_database())
        interp.set_analyze(True)
        result = interp.run("? sel[%3 > 5](beer); ? proj[%1](beer);")
        assert len(result.analyze_reports) == 2
        assert len(result.outputs) == 2
        assert result.committed
        assert result.outputs[0] == result.analyze_reports[0].result

    def test_analyze_off_by_default(self):
        interp = XRAInterpreter(tiny_beer_database())
        result = interp.run("? sel[%3 > 5](beer);")
        assert result.analyze_reports == []

    def test_writes_still_run_as_transactions(self):
        interp = XRAInterpreter(tiny_beer_database())
        interp.set_analyze(True)
        result = interp.run(
            "insert(beer, tuples[('New', 'Brew', 5.0)]); ? beer;"
        )
        assert result.committed
        assert len(result.analyze_reports) == 1  # only the read


class TestCliAnalyze:
    def run_shell(self, text):
        out, err = io.StringIO(), io.StringIO()
        shell = Shell(tiny_beer_database(), out=out, err=err)
        shell.run(io.StringIO(text))
        return out.getvalue(), err.getvalue(), shell

    def test_analyze_command_prints_annotated_tree(self):
        out, err, _shell = self.run_shell(".analyze sel[%3 > 5](beer)\n")
        assert not err
        assert "EXPLAIN ANALYZE" in out
        assert "est=" in out and "act=" in out
        assert "ms" in out

    def test_analyze_mode_toggles(self):
        out, err, shell = self.run_shell(
            ".analyze on\n? sel[%3 > 5](beer);\n.analyze off\n"
        )
        assert not err
        assert "analyze mode on" in out
        assert "EXPLAIN ANALYZE" in out
        assert "Dubbel" in out  # the result still prints
        assert len(shell.analyze_reports) == 1

    def test_analyze_bad_query_reports_error(self):
        out, err, _shell = self.run_shell(".analyze sel[%3 > 5](nothere)\n")
        assert "error" in err

    def test_metrics_show_percentiles(self):
        out, err, _shell = self.run_shell(
            ".analyze sel[%3 > 5](beer)\n.metrics\n"
        )
        assert not err
        assert "analyze.runs" in out
        assert "p50=" in out and "p95=" in out and "p99=" in out


# ---------------------------------------------------------------------------
# Overhead guard
# ---------------------------------------------------------------------------


class TestZeroOverheadWhenOff:
    def test_physical_ops_carry_no_analyze_state(self):
        from repro.engine.iterators import PhysicalOp

        assert PhysicalOp.__slots__ == ("schema",)

    def test_profiling_only_wraps_on_request(self):
        from repro.engine.iterators import ScanOp
        from repro.engine.planner import plan

        env, refs = chain(1, [10], [3, 3], seed=15)
        physical = plan(refs[0])
        assert isinstance(physical, ScanOp)  # no wrappers in the plain path

    def test_estimates_unchanged_without_observations(self):
        env, refs = chain(2, [50, 10], [5, 4, 4], seed=16)
        expr = Select("%2 = %3", Product(refs[0], refs[1]))
        catalog = StatisticsCatalog.from_env(env)
        before = estimate_cardinality(expr, catalog)
        analyze(expr, env)  # uses its own catalog; ours must not change
        assert estimate_cardinality(expr, catalog) == before
