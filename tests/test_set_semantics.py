"""Tests for the set-semantics foil evaluator (the paper's comparison model)."""

from hypothesis import given

from repro.algebra import (
    GroupBy,
    LiteralRelation,
    Product,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.engine import evaluate, evaluate_set
from repro.relation import Relation
from repro.workloads.synthetic import int_schema
from tests.conftest import int_relations


def lit(relation):
    return LiteralRelation(relation)


class TestSetModelBehaviour:
    def test_base_relations_deduplicated(self):
        relation = Relation(int_schema(1), [(1,), (1,), (2,)])
        result = evaluate_set(RelationRef("t", relation.schema), {"t": relation})
        assert result.multiplicity((1,)) == 1

    def test_projection_deduplicates(self):
        relation = Relation(int_schema(2), [(1, 7), (2, 7)])
        result = evaluate_set(lit(relation).project(["%2"]), {})
        assert result.multiplicity((7,)) == 1

    def test_union_is_max(self):
        relation = Relation(int_schema(1), [(1,)])
        result = evaluate_set(Union(lit(relation), lit(relation)), {})
        assert result.multiplicity((1,)) == 1

    def test_extended_projection_deduplicates(self):
        relation = Relation(int_schema(2), [(1, 5), (2, 5)])
        result = evaluate_set(lit(relation).extended_project(["%2 * 2"]), {})
        assert result.multiplicity((10,)) == 1

    @given(int_relations)
    def test_all_results_are_sets(self, relation):
        for expr in (
            lit(relation).project(["%1"]),
            Union(lit(relation), lit(relation)),
            Select("%1 > 1", lit(relation)),
            Product(lit(relation), lit(relation)),
        ):
            result = evaluate_set(expr, {})
            assert all(count == 1 for _row, count in result.pairs())

    @given(int_relations)
    def test_agrees_with_bag_on_duplicate_free_pipelines(self, relation):
        """On δ'd input and duplicate-safe operators both models agree."""
        expr = Select("%1 > 1", Unique(lit(relation)))
        assert evaluate_set(expr, {}) == evaluate(expr, {})

    def test_aggregate_corruption(self):
        """The general form of Example 3.2: projecting before aggregating
        silently corrupts AVG under set semantics."""
        relation = Relation(int_schema(2), [(1, 10), (2, 10), (3, 40)])
        expr = GroupBy(None, "AVG", "%1", lit(relation).project(["%2"]))
        bag_result = evaluate(expr, {})
        set_result = evaluate_set(expr, {})
        assert bag_result.multiplicity((20.0,)) == 1  # (10+10+40)/3
        assert set_result.multiplicity((25.0,)) == 1  # (10+40)/2 — wrong!

    def test_count_corruption(self):
        relation = Relation(int_schema(2), [(1, 7), (2, 7), (3, 7)])
        expr = GroupBy(None, "CNT", None, lit(relation).project(["%2"]))
        assert list(evaluate(expr, {}).pairs()) == [((3,), 1)]
        assert list(evaluate_set(expr, {}).pairs()) == [((1,), 1)]
