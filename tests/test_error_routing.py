"""Eval-time failures surface as ReproError subclasses, not bare builtins.

A mismatch between a tuple's width and what its schema promises (or a
plan referencing a relation the environment lacks) used to escape as a
bare ``IndexError`` / ``KeyError`` from deep inside the evaluator.
These tests pin the routed versions: the error type lives in
:mod:`repro.errors` and the message names the offending attribute
index or relation.
"""

from __future__ import annotations

import pytest

from repro.domains import INTEGER, STRING
from repro.engine import plan
from repro.errors import (
    ReproError,
    UnboundAttributeError,
    UnknownRelationError,
)
from repro.aggregates import resolve_aggregate
from repro.expressions import AttrRef
from repro.relation import Relation
from repro.schema import RelationSchema

SCHEMA = RelationSchema.of("t", a=STRING, b=INTEGER, c=INTEGER)


def short_row_relation() -> Relation:
    """A relation whose rows are *narrower* than its schema promises."""
    return Relation(SCHEMA, {("x",): 2}, validate=False)


def test_attr_ref_overrun_names_the_position() -> None:
    extract = AttrRef(3).bind(SCHEMA)
    with pytest.raises(UnboundAttributeError) as caught:
        extract(("only",))
    assert "%3" in str(caught.value)
    assert "1-attribute tuple" in str(caught.value)


def test_attr_ref_overrun_is_a_repro_error() -> None:
    with pytest.raises(ReproError):
        AttrRef(2).bind(SCHEMA)(())


def test_scan_of_missing_relation() -> None:
    from repro.algebra import RelationRef

    physical = plan(RelationRef("ghost", SCHEMA))
    with pytest.raises(UnknownRelationError) as caught:
        list(physical.execute({}))
    assert "ghost" in str(caught.value)


def test_group_by_param_overrun_reference_evaluator() -> None:
    relation = short_row_relation()
    with pytest.raises(UnboundAttributeError) as caught:
        relation.group_by([1], resolve_aggregate("SUM"), 3)
    assert "%3" in str(caught.value)


def test_whole_relation_aggregate_param_overrun() -> None:
    relation = short_row_relation()
    with pytest.raises(UnboundAttributeError) as caught:
        relation.group_by([], resolve_aggregate("SUM"), 2)
    assert "%2" in str(caught.value)


def test_group_by_param_overrun_physical_engine() -> None:
    from repro.algebra import GroupBy, RelationRef

    expr = GroupBy((1,), "SUM", 3, RelationRef("t", SCHEMA))
    physical = plan(expr)
    with pytest.raises(UnboundAttributeError) as caught:
        list(physical.execute({"t": short_row_relation()}))
    assert "%3" in str(caught.value)


def test_global_aggregate_overrun_physical_engine() -> None:
    from repro.algebra import GroupBy, RelationRef

    expr = GroupBy(None, "SUM", 2, RelationRef("t", SCHEMA))
    physical = plan(expr)
    with pytest.raises(UnboundAttributeError) as caught:
        list(physical.execute({"t": short_row_relation()}))
    assert "%2" in str(caught.value)


def test_valid_rows_still_work() -> None:
    relation = Relation(SCHEMA, [("x", 1, 10), ("y", 2, 20), ("x", 1, 30)])
    result = relation.group_by([1], resolve_aggregate("SUM"), 3)
    assert sorted(result.pairs()) == [(("x", 40), 1), (("y", 20), 1)]
