"""Eval-time failures surface as ReproError subclasses, not bare builtins.

A mismatch between a tuple's width and what its schema promises (or a
plan referencing a relation the environment lacks) used to escape as a
bare ``IndexError`` / ``KeyError`` from deep inside the evaluator.
These tests pin the routed versions: the error type lives in
:mod:`repro.errors` and the message names the offending attribute
index or relation.
"""

from __future__ import annotations

import pytest

from repro.domains import INTEGER, STRING
from repro.engine import plan
from repro.errors import (
    ReproError,
    UnboundAttributeError,
    UnknownRelationError,
)
from repro.aggregates import resolve_aggregate
from repro.expressions import AttrRef
from repro.relation import Relation
from repro.schema import RelationSchema

SCHEMA = RelationSchema.of("t", a=STRING, b=INTEGER, c=INTEGER)


def short_row_relation() -> Relation:
    """A relation whose rows are *narrower* than its schema promises."""
    return Relation(SCHEMA, {("x",): 2}, validate=False)


def test_attr_ref_overrun_names_the_position() -> None:
    extract = AttrRef(3).bind(SCHEMA)
    with pytest.raises(UnboundAttributeError) as caught:
        extract(("only",))
    assert "%3" in str(caught.value)
    assert "1-attribute tuple" in str(caught.value)


def test_attr_ref_overrun_is_a_repro_error() -> None:
    with pytest.raises(ReproError):
        AttrRef(2).bind(SCHEMA)(())


def test_scan_of_missing_relation() -> None:
    from repro.algebra import RelationRef

    physical = plan(RelationRef("ghost", SCHEMA))
    with pytest.raises(UnknownRelationError) as caught:
        list(physical.execute({}))
    assert "ghost" in str(caught.value)


def test_group_by_param_overrun_reference_evaluator() -> None:
    relation = short_row_relation()
    with pytest.raises(UnboundAttributeError) as caught:
        relation.group_by([1], resolve_aggregate("SUM"), 3)
    assert "%3" in str(caught.value)


def test_whole_relation_aggregate_param_overrun() -> None:
    relation = short_row_relation()
    with pytest.raises(UnboundAttributeError) as caught:
        relation.group_by([], resolve_aggregate("SUM"), 2)
    assert "%2" in str(caught.value)


def test_group_by_param_overrun_physical_engine() -> None:
    from repro.algebra import GroupBy, RelationRef

    expr = GroupBy((1,), "SUM", 3, RelationRef("t", SCHEMA))
    physical = plan(expr)
    with pytest.raises(UnboundAttributeError) as caught:
        list(physical.execute({"t": short_row_relation()}))
    assert "%3" in str(caught.value)


def test_global_aggregate_overrun_physical_engine() -> None:
    from repro.algebra import GroupBy, RelationRef

    expr = GroupBy(None, "SUM", 2, RelationRef("t", SCHEMA))
    physical = plan(expr)
    with pytest.raises(UnboundAttributeError) as caught:
        list(physical.execute({"t": short_row_relation()}))
    assert "%2" in str(caught.value)


def test_valid_rows_still_work() -> None:
    relation = Relation(SCHEMA, [("x", 1, 10), ("y", 2, 20), ("x", 1, 30)])
    result = relation.group_by([1], resolve_aggregate("SUM"), 3)
    assert sorted(result.pairs()) == [(("x", 40), 1), (("y", 20), 1)]


# ---------------------------------------------------------------------------
# Stable wire codes (repro.server)
# ---------------------------------------------------------------------------
#
# Client-visible failures route through repro.errors and travel as stable
# machine-readable codes.  These tests freeze the codes (renaming a class
# must not change its code) and exercise the three client-triggerable
# refusals end-to-end: per-query timeout, malformed request, and the
# strict-lint gate.


def _iter_error_classes():
    import repro.errors as errors_module

    for name in errors_module.__all__:
        obj = getattr(errors_module, name)
        if isinstance(obj, type) and issubclass(obj, errors_module.ReproError):
            yield obj


def test_every_error_class_has_a_stable_wire_code() -> None:
    from repro.errors import wire_code

    codes = {}
    for cls in _iter_error_classes():
        code = cls.wire_code
        assert isinstance(code, str) and code.startswith("REPRO-"), cls
        codes[cls.__name__] = code
    # The full frozen map: adding classes extends this, renaming or
    # recoding an existing class is a wire-protocol break.
    assert codes == {
        "ReproError": "REPRO-ERROR",
        "DomainError": "REPRO-DOMAIN",
        "DomainValueError": "REPRO-DOMAIN-VALUE",
        "UnknownDomainError": "REPRO-DOMAIN-UNKNOWN",
        "SchemaError": "REPRO-SCHEMA",
        "SchemaMismatchError": "REPRO-SCHEMA-MISMATCH",
        "AttributeResolutionError": "REPRO-ATTRIBUTE",
        "DuplicateAttributeError": "REPRO-ATTRIBUTE-DUPLICATE",
        "ExpressionError": "REPRO-EXPRESSION",
        "ExpressionTypeError": "REPRO-EXPRESSION-TYPE",
        "ExpressionParseError": "REPRO-EXPRESSION-PARSE",
        "UnboundAttributeError": "REPRO-ATTRIBUTE-UNBOUND",
        "AlgebraError": "REPRO-ALGEBRA",
        "ArityError": "REPRO-ARITY",
        "AggregateError": "REPRO-AGGREGATE",
        "EmptyAggregateError": "REPRO-AGGREGATE-EMPTY",
        "EvaluationError": "REPRO-EVAL",
        "DivisionByZeroError": "REPRO-DIV-ZERO",
        "LanguageError": "REPRO-LANGUAGE",
        "UnknownRelationError": "REPRO-UNKNOWN-RELATION",
        "DuplicateRelationError": "REPRO-DUPLICATE-RELATION",
        "TransactionError": "REPRO-TRANSACTION",
        "TransactionAbort": "REPRO-ABORT",
        "ConstraintViolationError": "REPRO-CONSTRAINT",
        "FrontendError": "REPRO-FRONTEND",
        "SQLParseError": "REPRO-SQL-PARSE",
        "SQLTranslationError": "REPRO-SQL-TRANSLATE",
        "XRAParseError": "REPRO-XRA-PARSE",
        "XRARuntimeError": "REPRO-XRA-RUNTIME",
        "LintError": "REPRO-LINT",
        "ServerError": "REPRO-SERVER",
        "ProtocolError": "REPRO-PROTOCOL",
        "QueryTimeoutError": "REPRO-TIMEOUT",
        "ServerBusyError": "REPRO-BUSY",
        "ServerShutdownError": "REPRO-SHUTDOWN",
        "TransactionConflictError": "REPRO-CONFLICT",
    }


def test_wire_code_maps_foreign_exceptions_to_internal() -> None:
    from repro.errors import UnknownRelationError, wire_code

    assert wire_code(UnknownRelationError("x")) == "REPRO-UNKNOWN-RELATION"
    assert wire_code(KeyError("x")) == "REPRO-INTERNAL"
    assert wire_code(RuntimeError("boom")) == "REPRO-INTERNAL"


def test_error_to_wire_carries_code_type_and_message() -> None:
    from repro.errors import TransactionConflictError
    from repro.server.protocol import error_to_wire

    payload = error_to_wire(TransactionConflictError(["acct", "beer"]))
    assert payload["code"] == "REPRO-CONFLICT"
    assert payload["type"] == "TransactionConflictError"
    assert payload["relations"] == ["acct", "beer"]
    assert "acct" in payload["message"]


def _background_server(**config_kwargs):
    from repro.server import ServerConfig, serve_in_background

    return serve_in_background(None, ServerConfig(**config_kwargs))


def test_wire_timeout_code(monkeypatch) -> None:
    import threading
    import time as time_module

    from repro.server.client import RemoteError, ServerClient
    from repro.server.sessions import ServerSession

    release = threading.Event()
    original = ServerSession.run_statements

    def stalling(statements, context):
        release.wait(5.0)
        return original(statements, context)

    handle = _background_server(query_timeout=0.2)
    try:
        with ServerClient(*handle.address) as client:
            client.xra("create t(x: integer);")
            monkeypatch.setattr(
                ServerSession, "run_statements", staticmethod(stalling)
            )
            started = time_module.perf_counter()
            with pytest.raises(RemoteError) as caught:
                client.xra("? t;")
            assert caught.value.code == "REPRO-TIMEOUT"
            assert time_module.perf_counter() - started < 2.0
    finally:
        release.set()
        handle.stop()


def test_wire_malformed_request_code() -> None:
    from repro.server.client import RemoteError, ServerClient

    handle = _background_server()
    try:
        with ServerClient(*handle.address) as client:
            # Structurally valid JSON, semantically malformed requests.
            with pytest.raises(RemoteError) as caught:
                client.request("no-such-op")
            assert caught.value.code == "REPRO-PROTOCOL"
            with pytest.raises(RemoteError) as caught:
                client.request("xra")  # missing the required 'q'
            assert caught.value.code == "REPRO-PROTOCOL"
            with pytest.raises(RemoteError) as caught:
                client.request("xra", q="")  # empty statement body
            assert caught.value.code == "REPRO-PROTOCOL"
    finally:
        handle.stop()


def test_wire_lint_strict_refusal_code() -> None:
    from repro.server.client import RemoteError, ServerClient

    handle = _background_server(lint="strict")
    try:
        with ServerClient(*handle.address) as client:
            client.xra("create t(x: integer);")
            with pytest.raises(RemoteError) as caught:
                client.xra("? sel[%1 = 'x'](ghost);")
            assert caught.value.code == "REPRO-LINT"
            assert caught.value.remote_type == "LintError"
            # A clean statement still executes under the strict gate.
            client.xra("insert(t, tuples[(1)]);")
            (result,) = client.xra("? t;")
            assert len(result) == 1
    finally:
        handle.stop()
