"""Property-based machine-checks of the paper's theorems (Section 3).

Theorems 3.1-3.3 quantify over all multi-sets; hypothesis samples that
space.  The δ/⊎ non-law is checked *as* a non-law: we verify the exact
condition under which it fails.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import LiteralRelation
from repro.optimizer import (
    check_equivalence,
    delta_max_union,
    delta_over_union_claimed,
    delta_over_union_valid,
    intersect_as_difference,
    intersect_associative,
    join_as_select_product,
    join_associative,
    product_associative,
    project_distributes_over_union,
    select_distributes_over_union,
    union_associative,
)
from tests.conftest import int_relations, int_relations_deg1

conditions = st.sampled_from(
    ["%1 = %2", "%1 < %2", "%1 + %2 > 4", "true", "false", "%1 = 2 or %2 = 3"]
)

attr_lists = st.sampled_from(["%1", "%2", "%1, %2", "%2, %1", "%1, %1"])

join_conditions = st.sampled_from(["%2 = %3", "%1 < %4", "%2 + 1 = %3", "true"])


def as_exprs(*relations):
    return [LiteralRelation(relation) for relation in relations]


class TestTheorem31:
    @given(int_relations, int_relations)
    def test_intersect_is_double_difference(self, r1, r2):
        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(intersect_as_difference(e1, e2), {})

    @given(int_relations, int_relations, join_conditions)
    def test_join_is_select_product(self, r1, r2, condition):
        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(join_as_select_product(e1, e2, condition), {})


class TestTheorem32:
    @given(int_relations, int_relations, conditions)
    def test_select_distributes_over_union(self, r1, r2, condition):
        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(
            select_distributes_over_union(e1, e2, condition), {}
        )

    @given(int_relations, int_relations, attr_lists)
    def test_project_distributes_over_union(self, r1, r2, attrs):
        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(
            project_distributes_over_union(e1, e2, attrs), {}
        )


class TestTheorem33:
    @given(int_relations, int_relations, int_relations)
    def test_product_associative(self, r1, r2, r3):
        e1, e2, e3 = as_exprs(r1, r2, r3)
        assert check_equivalence(product_associative(e1, e2, e3), {})

    @given(int_relations, int_relations, int_relations)
    def test_union_associative(self, r1, r2, r3):
        e1, e2, e3 = as_exprs(r1, r2, r3)
        assert check_equivalence(union_associative(e1, e2, e3), {})

    @given(int_relations, int_relations, int_relations)
    def test_intersect_associative(self, r1, r2, r3):
        e1, e2, e3 = as_exprs(r1, r2, r3)
        assert check_equivalence(intersect_associative(e1, e2, e3), {})

    @given(int_relations, int_relations, int_relations)
    def test_join_associative(self, r1, r2, r3):
        e1, e2, e3 = as_exprs(r1, r2, r3)
        # φ1 over E1 ⊕ E2 (cols 1-4), φ2 over E2 ⊕ E3 (cols 3-6).
        pair = join_associative(e1, e2, e3, "%2 = %3", "%4 = %5")
        assert check_equivalence(pair, {})

    @given(int_relations, int_relations, int_relations)
    def test_join_associative_with_arithmetic(self, r1, r2, r3):
        pair = join_associative(
            *as_exprs(r1, r2, r3), "%1 + %2 = %3", "%4 < %6"
        )
        assert check_equivalence(pair, {})

    def test_join_associative_rejects_misplaced_condition(self):
        import pytest

        from repro.workloads import random_int_relation

        e1, e2, e3 = as_exprs(
            random_int_relation(3, seed=1),
            random_int_relation(3, seed=2),
            random_int_relation(3, seed=3),
        )
        with pytest.raises(ValueError):
            join_associative(e1, e2, e3, "%1 = %5", "%3 = %4")  # φ1 touches E3
        with pytest.raises(ValueError):
            join_associative(e1, e2, e3, "%1 = %3", "%1 = %5")  # φ2 touches E1


class TestDeltaUnionRelation:
    @given(int_relations, int_relations)
    def test_distribution_fails_exactly_on_overlap(self, r1, r2):
        """δ(E1 ⊎ E2) = δE1 ⊎ δE2 holds iff the supports are disjoint."""
        e1, e2 = as_exprs(r1, r2)
        holds = check_equivalence(delta_over_union_claimed(e1, e2), {})
        disjoint = not (r1.tuples.support() & r2.tuples.support())
        assert holds == disjoint

    def test_counterexample_exists(self):
        """A concrete witness: any shared tuple breaks the distribution."""
        from repro.relation import Relation
        from repro.workloads.synthetic import int_schema

        schema = int_schema(2)
        shared = Relation(schema, [(1, 1)])
        e1, e2 = as_exprs(shared, shared)
        assert not check_equivalence(delta_over_union_claimed(e1, e2), {})

    @given(int_relations, int_relations)
    def test_valid_form_always_holds(self, r1, r2):
        """δ(E1 ⊎ E2) = δ(δE1 ⊎ δE2) — the relation that does hold."""
        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(delta_over_union_valid(e1, e2), {})

    @given(int_relations, int_relations)
    def test_max_union_form_always_holds(self, r1, r2):
        """δ(E1 ⊎ E2) = δE1 ∪max δE2 at the container level."""
        assert delta_max_union(r1, r2)


class TestSingleColumnEdgeCases:
    @given(int_relations_deg1, int_relations_deg1)
    def test_theorems_on_degree_one(self, r1, r2):
        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(intersect_as_difference(e1, e2), {})
        assert check_equivalence(
            select_distributes_over_union(e1, e2, "%1 > 2"), {}
        )


class TestCommutativityWithProjection:
    """Commutativity is absent from Theorem 3.3 (it permutes columns);
    the π-repaired versions hold and are property-checked here."""

    @given(int_relations, int_relations)
    def test_product_commutes_modulo_projection(self, r1, r2):
        from repro.optimizer import product_commutative_with_projection

        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(
            product_commutative_with_projection(e1, e2), {}
        )

    @given(int_relations, int_relations, join_conditions)
    def test_join_commutes_modulo_projection(self, r1, r2, condition):
        from repro.optimizer import join_commutative_with_projection

        e1, e2 = as_exprs(r1, r2)
        assert check_equivalence(
            join_commutative_with_projection(e1, e2, condition), {}
        )

    def test_plain_commutativity_fails_positionally(self):
        """Without the projection the *contents* permute — why the paper
        cannot state E1 × E2 = E2 × E1 in a positional model."""
        from repro.algebra import Product
        from repro.engine import evaluate
        from repro.relation import Relation
        from repro.workloads.synthetic import int_schema

        r1 = Relation(int_schema(1), [(1,)])
        r2 = Relation(int_schema(1), [(2,)])
        e1, e2 = as_exprs(r1, r2)
        forward = evaluate(Product(e1, e2), {})
        backward = evaluate(Product(e2, e1), {})
        assert forward.multiplicity((1, 2)) == 1
        assert backward.multiplicity((2, 1)) == 1
        assert forward != backward
