"""The live telemetry plane: accounts, Prometheus export, stitched traces.

Four layers, tested bottom-up:

* :class:`ResourceAccount` — tallies, merge, thread-local activation;
* the Prometheus text exposition over the stable
  :meth:`MetricsRegistry.snapshot` schema (format validity, counter
  naming, synthetic histogram buckets, label escaping);
* the HTTP admin plane against a live :class:`QueryServer` under
  concurrent client load — scrape validity, counter monotonicity,
  per-connection gauges, ``/healthz`` flipping to 503 during drain;
* wire-level trace propagation — every client request span joins 1:1
  with a server request span in the stitched Perfetto export, with the
  server-side phase spans riding along.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import re
import threading
import time
from io import StringIO
from typing import Dict, FrozenSet, Iterator, List, Tuple

import pytest

from repro import obs
from repro.database import Database
from repro.obs.export import export_stitched_trace, stitch_trace_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    ResourceAccount,
    TelemetryServer,
    account,
    activate,
    render_prometheus,
    render_top,
)
from repro.server import ServerConfig, serve_in_background
from repro.server.client import ServerClient
from repro.server.sessions import ServerSession
from repro.xra import XRAInterpreter

SEED = """
create acct(owner: string, amount: integer);
insert(acct, tuples[('alice', 10); ('alice', 10); ('bob', 20); ('carol', 30)]);
"""


def seeded() -> Database:
    database = Database()
    XRAInterpreter(database).run(SEED)
    return database


@pytest.fixture(autouse=True)
def _reset_obs() -> Iterator[None]:
    yield
    obs.reset()


@pytest.fixture
def server():
    handle = serve_in_background(
        seeded(),
        ServerConfig(
            telemetry=0,
            engine="vector",
            slow_query_threshold=0.0,
            query_timeout=15.0,
        ),
    )
    yield handle
    handle.stop()


def scrape(address: Tuple[str, int], path: str = "/metrics",
           method: str = "GET") -> Tuple[int, str]:
    connection = http.client.HTTPConnection(*address, timeout=10)
    try:
        connection.request(method, path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


# ---------------------------------------------------------------------------
# ResourceAccount
# ---------------------------------------------------------------------------


def test_account_tallies_and_ratio() -> None:
    acct = ResourceAccount()
    assert acct.dedup_ratio is None  # no δ ran yet
    acct.dedup_rows_in = 12
    acct.dedup_rows_out = 4
    assert acct.dedup_ratio == 3.0
    record = acct.to_dict()
    assert record["dedup_rows_in"] == 12
    assert record["dedup_ratio"] == 3.0
    assert set(record) == set(ResourceAccount.__slots__) | {"dedup_ratio"}


def test_account_merge_folds_every_field() -> None:
    left, right = ResourceAccount(), ResourceAccount()
    for index, field in enumerate(ResourceAccount.__slots__):
        setattr(left, field, index)
        setattr(right, field, 10)
    assert left.merge(right) is left
    for index, field in enumerate(ResourceAccount.__slots__):
        assert getattr(left, field) == index + 10


def test_activation_is_thread_local_and_nests() -> None:
    assert account() is None
    outer, inner = ResourceAccount(), ResourceAccount()
    with activate(outer):
        assert account() is outer
        with activate(inner):
            assert account() is inner
        assert account() is outer
        seen_in_thread: List[object] = []
        thread = threading.Thread(
            target=lambda: seen_in_thread.append(account())
        )
        thread.start()
        thread.join()
        assert seen_in_thread == [None]  # other threads see their own slot
    assert account() is None


def test_evaluation_credits_the_active_account() -> None:
    from repro.algebra import RelationRef, Unique
    from repro.language.context import ExecutionContext

    database = seeded()
    acct = ResourceAccount()
    context = ExecutionContext(
        dict(database.snapshot()), account=acct
    )
    expr = Unique(RelationRef("acct", database.schema.get("acct")))
    result = context.evaluate(expr)
    assert len(result) == 3
    assert acct.rows_scanned == 4
    assert acct.rows_emitted == 3
    assert acct.dedup_rows_in == 4
    assert acct.dedup_rows_out == 3
    assert acct.dedup_ratio == pytest.approx(4 / 3)
    assert acct.evaluations == 1


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

#: One exposition sample line: name, optional labels, numeric value.
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[^{}]*\})?"
    r" (-?[0-9][0-9.eE+-]*|NaN|\+Inf|-Inf)$"
)
_LABEL = re.compile(r'([a-zA-Z0-9_]+)="((?:[^"\\]|\\.)*)"')

Sample = Tuple[str, FrozenSet[Tuple[str, str]], float]


def parse_exposition(text: str) -> List[Sample]:
    """Parse (and thereby validate) exposition text into samples."""
    samples: List[Sample] = []
    typed: set = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            typed.add(line.split()[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        assert match, f"invalid exposition line: {line!r}"
        name, label_body, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, f"undeclared metric {name}"
        labels = frozenset(_LABEL.findall(label_body or ""))
        samples.append((name, labels, float(value)))
    return samples


def test_counter_names_get_total_suffix() -> None:
    registry = MetricsRegistry()
    registry.counter("server.requests", op="xra").inc(3)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_server_requests_total counter" in text
    assert 'repro_server_requests_total{op="xra"} 3' in text


def test_label_values_are_escaped() -> None:
    registry = MetricsRegistry()
    registry.counter("errors", detail='quote " slash \\ nl \n').inc()
    text = render_prometheus(registry.snapshot())
    assert r'detail="quote \" slash \\ nl \n"' in text
    parse_exposition(text)


def test_non_numeric_gauges_are_skipped() -> None:
    registry = MetricsRegistry()
    registry.gauge("parallel.backend").set("process")
    registry.gauge("cache.bytes").set(1024)
    text = render_prometheus(registry.snapshot())
    assert "process" not in text
    assert "repro_cache_bytes 1024" in text


def test_histogram_buckets_are_cumulative_and_monotone() -> None:
    registry = MetricsRegistry()
    histogram = registry.histogram("request_seconds")
    for value in range(1, 101):
        histogram.observe(value / 100.0)
    samples = parse_exposition(render_prometheus(registry.snapshot()))
    buckets = [
        (dict(labels)["le"], value)
        for name, labels, value in samples
        if name == "repro_request_seconds_bucket"
    ]
    assert buckets, "no bucket samples rendered"
    assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 100
    counts = [count for _, count in buckets]
    assert counts == sorted(counts), "cumulative counts must be monotone"
    boundaries = [float(le) for le, _ in buckets[:-1]]
    assert boundaries == sorted(boundaries)
    count = next(
        value for name, _, value in samples
        if name == "repro_request_seconds_count"
    )
    assert count == 100


def test_snapshot_schema_round_trips() -> None:
    """The documented snapshot schema survives JSON and feeds all surfaces."""
    registry = MetricsRegistry()
    registry.counter("server.requests", op="xra").inc(2)
    registry.gauge("server.inflight").set(1)
    registry.histogram("server.request_seconds", op="xra").observe(0.25)
    snapshot = registry.snapshot()
    restored = json.loads(json.dumps(snapshot))
    assert restored == snapshot
    for record in snapshot:
        assert record["event"] == "metric"
        assert record["kind"] in ("counter", "gauge", "histogram")
        assert isinstance(record["name"], str)
        if record["kind"] == "histogram":
            assert {"count", "sum", "min", "max", "mean",
                    "p50", "p95", "p99"} <= set(record)
        else:
            assert "value" in record
    # All three surfaces are derived from this one schema: the registry's
    # own text rendering and the Prometheus exposition accept the
    # round-tripped records unchanged.
    text = render_prometheus(restored)
    assert "repro_server_requests_total" in text
    assert "repro_server_request_seconds_bucket" in text
    rendered = registry.render()
    assert "server.requests" in rendered


# ---------------------------------------------------------------------------
# The admin plane against a live server under load
# ---------------------------------------------------------------------------


def _series(samples: List[Sample]) -> Dict[Tuple[str, FrozenSet], float]:
    return {(name, labels): value for name, labels, value in samples}


def test_scrape_under_concurrent_load(server) -> None:
    admin = server.server.telemetry_address
    assert admin is not None
    errors: List[BaseException] = []

    def worker(index: int) -> None:
        try:
            with ServerClient(*server.address) as client:
                for round_number in range(5):
                    client.xra("? unique(proj[%1](acct));")
                client.xra(
                    f"insert(acct, tuples[('worker-{index}', {index})]);"
                )
        except BaseException as error:  # surfaced by the main thread
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(8)
    ]
    for thread in threads:
        thread.start()
    status, mid_text = scrape(admin)  # scrape *while* the load runs
    assert status == 200
    mid = _series(parse_exposition(mid_text))
    for thread in threads:
        thread.join()
    status, final_text = scrape(admin)
    assert status == 200
    final = _series(parse_exposition(final_text))

    # Counters are monotone between the mid-load and final scrapes.
    for key, value in mid.items():
        if key[0].endswith("_total"):
            assert key in final, f"counter series vanished: {key}"
            assert final[key] >= value, f"counter went backwards: {key}"

    # The headline request counter saw all 48 xra requests.
    xra_requests = sum(
        value
        for (name, labels), value in final.items()
        if name == "repro_server_requests_total"
        and ("op", "xra") in labels
    )
    assert xra_requests == 48
    names = {name for name, _ in final}
    assert "repro_server_admitted_total" in names
    assert "repro_server_admission_wait_seconds_count" in names
    assert "repro_server_request_seconds_bucket" in names
    assert "repro_server_write_lock_hold_seconds_count" in names
    # Per-connection gauges, labelled by client id.
    scanned = [
        (labels, value)
        for (name, labels), value in final.items()
        if name == "repro_server_session_rows_scanned"
    ]
    assert len(scanned) == 8
    # A session whose reads all hit the shared result cache scans zero
    # rows — but then its cache-hit gauge must say so.
    for labels, value in scanned:
        if value == 0:
            assert final[("repro_server_session_cache_hits", labels)] > 0
    requests = [
        value
        for (name, labels), value in final.items()
        if name == "repro_server_session_requests"
    ]
    assert sorted(requests) == [6] * 8


def test_response_carries_resources(server) -> None:
    with ServerClient(*server.address) as client:
        response = client.xra_response("? unique(acct);")
    resources = response["resources"]
    assert resources["rows_scanned"] == 4
    assert resources["dedup_rows_in"] == 4
    assert resources["dedup_rows_out"] == 3
    assert resources["statements"] == 1
    assert resources["batches_vectorized"] >= 1


def test_stats_command_and_top_dashboard(server) -> None:
    with ServerClient(*server.address) as client:
        client.xra("? unique(acct);")
        stats = client.stats()
        assert stats["server"]["draining"] is False
        assert stats["totals"]["requests"] >= 1
        assert stats["querylog"]["recorded"] >= 1
        assert any(
            record["name"] == "server.requests"
            for record in stats["metrics"]
        )
        (connection,) = stats["connections"]
        assert connection["resources"]["rows_scanned"] == 4
        screen = render_top(stats)
        assert "write lock free" in screen
        assert f"{connection['client']:>8}" in screen
        # The remote shell's .top is just this dashboard over one
        # stats round trip.
        from repro.cli import RemoteShell

        out = StringIO()
        shell = RemoteShell(client, out=out, err=out)
        assert shell.handle_meta(".top") is None
        assert "inflight" in out.getvalue()


def test_slowlog_and_stats_endpoints(server) -> None:
    admin = server.server.telemetry_address
    with ServerClient(*server.address) as client:
        client.xra("? acct;")
    status, body = scrape(admin, "/slowlog")
    assert status == 200
    entries = json.loads(body)["slowlog"]
    assert entries and entries[-1]["resources"]["rows_scanned"] == 4
    assert entries[-1]["trace_id"]  # propagated from the client envelope
    status, body = scrape(admin, "/stats")
    assert status == 200
    assert json.loads(body)["server"]["status"] == "ok"


def test_unknown_paths_and_methods(server) -> None:
    admin = server.server.telemetry_address
    status, body = scrape(admin, "/nope")
    assert status == 404
    assert "/metrics" in json.loads(body)["endpoints"]
    status, _ = scrape(admin, "/metrics", method="POST")
    assert status == 405
    connection = http.client.HTTPConnection(*admin, timeout=10)
    try:
        connection.request("HEAD", "/healthz")
        response = connection.getresponse()
        assert response.status == 200
        assert response.read() == b""  # HEAD: headers only
    finally:
        connection.close()


@contextlib.contextmanager
def standalone_plane(**kwargs) -> Iterator[TelemetryServer]:
    """A TelemetryServer on its own thread loop (no query server)."""
    plane = TelemetryServer(port=0, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(plane.start())
        started.set()
        loop.run_forever()
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    try:
        yield plane
    finally:
        asyncio.run_coroutine_threadsafe(plane.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)


def test_readyz_reflects_admission_saturation() -> None:
    health = {"status": "ok", "draining": False, "admission_saturated": True}
    with standalone_plane(health=lambda: dict(health)) as plane:
        status, _ = scrape(plane.address, "/healthz")
        assert status == 200  # saturated is not dead
        status, body = scrape(plane.address, "/readyz")
        assert status == 503
        assert json.loads(body)["ready"] is False
        health["admission_saturated"] = False
        status, body = scrape(plane.address, "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True


def test_healthz_flips_during_drain(monkeypatch) -> None:
    original = ServerSession.run_statements

    def stalled(statements, context):
        time.sleep(1.0)
        return original(statements, context)

    monkeypatch.setattr(
        ServerSession, "run_statements", staticmethod(stalled)
    )
    handle = serve_in_background(
        seeded(), ServerConfig(telemetry=0, drain_timeout=15.0)
    )
    try:
        admin = handle.server.telemetry_address
        status, body = scrape(admin, "/healthz")
        assert status == 200 and json.loads(body)["draining"] is False

        def slow_query() -> None:
            with contextlib.suppress(Exception):
                with ServerClient(*handle.address) as client:
                    client.xra("? acct;")

        sender = threading.Thread(target=slow_query)
        sender.start()
        time.sleep(0.3)  # let the request reach the stalled executor
        future = asyncio.run_coroutine_threadsafe(
            handle.server.shutdown(), handle._loop
        )
        # The admin plane outlives the drain window, so a scraper sees
        # the flip to 503/draining while the in-flight request finishes.
        saw_draining = False
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with contextlib.suppress(OSError):
                status, body = scrape(admin, "/healthz")
                if status == 503 and json.loads(body)["draining"]:
                    saw_draining = True
                    break
            time.sleep(0.05)
        assert saw_draining
        future.result(20)
        sender.join(20)
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# Wire-level trace propagation and the stitched export
# ---------------------------------------------------------------------------


def test_stitched_trace_joins_one_to_one(server, tmp_path) -> None:
    obs.enable()
    with ServerClient(*server.address) as client:
        client.xra("? unique(acct);")
        client.begin()
        client.xra("insert(acct, tuples[('dave', 40)]);")
        client.commit()
        trace_id = client.trace_id
    records = [span.to_record() for span in obs.tracer().ordered()]
    client_side = [r for r in records if r["name"] == "client.request"]
    server_side = [r for r in records if r["name"] != "client.request"]
    assert client_side and server_side

    # The join key is exact: every client request span pairs with
    # exactly one server request span via (trace_id, span_id).
    client_keys = {
        (r["attrs"]["trace_id"], r["attrs"]["span_id"]) for r in client_side
    }
    # client.close() sends a raw, untraced frame; every request that went
    # through ServerClient.request carries the propagated context.
    server_requests = [
        r for r in server_side
        if r["name"] == "server.request"
        and "trace_id" in r.get("attrs", {})
    ]
    server_keys = {
        (r["attrs"]["trace_id"], r["attrs"]["parent_span_id"])
        for r in server_requests
    }
    assert client_keys == server_keys
    assert len(client_keys) == len(client_side) == len(server_requests)
    assert all(key[0] == trace_id for key in client_keys)
    # The server minted its own span id for each linked span.
    assert all(r["attrs"]["span_id"] for r in server_requests)

    events = stitch_trace_events(client_side, server_side)
    stitched = [
        event for event in events
        if event.get("pid") == 2 and "stitched" in event.get("args", {})
    ]
    assert stitched
    by_name = {event["name"] for event in stitched
               if event["args"]["stitched"]}
    # The request span and its phases all land inside the client span.
    assert "server.request" in by_name
    assert "server.snapshot.pin" in by_name
    assert "server.execute" in by_name
    assert "server.admission.wait" in by_name
    assert "server.commit" in by_name
    client_events = [
        event for event in events
        if event.get("pid") == 1 and event.get("ph") == "X"
    ]
    for event in stitched:
        if event["name"] != "server.request":
            continue
        if event["args"].get("op") == "close":
            assert event["args"]["stitched"] is False  # untraced frame
            continue
        assert event["args"]["stitched"] is True
        containing = [
            parent for parent in client_events
            if parent["ts"] - 1e-3 <= event["ts"]
            and event["ts"] + event["dur"]
            <= parent["ts"] + parent["dur"] + 1e-3
        ]
        assert containing, "server.request not inside any client span"

    target = tmp_path / "stitched.json"
    written = export_stitched_trace(str(target), client_side, server_side)
    payload = json.loads(target.read_text())
    assert written == len(payload["traceEvents"]) == len(events)
    assert payload["displayTimeUnit"] == "ms"
