"""Differential matrix for the vectorized columnar engine.

The vector engine (:mod:`repro.engine.vector`) is a second physical
operator family over the same algebra; nothing about it may be
observable through results.  Three layers of evidence:

* **per-operator** — for every operator the planner can vectorize (and
  the pair-stream fallbacks it interoperates with), the vector result
  must be bag-equal to the reference evaluator and the pairs engine,
  including with a tiny batch size that forces chunk boundaries through
  every operator;
* **random plans** — the :mod:`repro.testing` expression fuzzer, run
  through the vector engine raw and optimized (the same corpus
  ``tests/test_differential.py`` pins the pairs engine with);
* **compiled vs. interpreted** — the expression compiler must agree
  with the AST interpreter on edge values: division by zero routes to
  the same :class:`~repro.errors.DivisionByZeroError`, and MONEY
  arithmetic (which the compiler refuses to lower) falls back to the
  interpreter without changing results.

Plus wiring smoke: engine selection on sessions/transactions, the
query cache, EXPLAIN ANALYZE labels, the parallel scheduler, and the
CLI ``.engine`` meta-command.
"""

import io
from decimal import Decimal

import pytest

from repro.aggregates import AVG, CNT, SUM
from repro.algebra import (
    Difference,
    ExtendedProject,
    GroupBy,
    Intersect,
    Join,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.algebra.base import as_attr_list
from repro.database import Database
from repro.domains import INTEGER, MONEY, REAL, STRING
from repro.engine import evaluate, execute, make_scheduler
from repro.engine.vector import (
    VFilterOp,
    VGroupByOp,
    VHashJoinOp,
    collect_batches,
    plan_vector,
)
from repro.errors import DivisionByZeroError, EmptyAggregateError
from repro.expressions import Neg, col, lit
from repro.expressions.compile import compile_row
from repro.language import Session
from repro.optimizer import optimize
from repro.relation import Relation
from repro.schema import RelationSchema
from repro.testing import ExpressionGenerator, random_environment

SEEDS = list(range(40))

#: A batch size small enough that every 50-row table spans several
#: batches — chunk-boundary bugs cannot hide behind "fits in one batch".
TINY_BATCH = 7


@pytest.fixture(scope="module")
def env():
    return random_environment(tables=3, size=50, degree=2, value_space=5, seed=7)


def _operator_cases(env):
    """One hand-built expression per operator/translation rule."""
    t1, t2, t3 = (RelationRef(name, env[name].schema) for name in ("t1", "t2", "t3"))
    return {
        "scan": t1,
        "select": Select(col(1).ge(lit(2)), t1),
        "select-stack": Select(col(1).ge(lit(2)), Select(col(2).le(lit(4)), t1)),
        "select-arith": Select((col(1) * lit(2) + col(2)).gt(lit(5)), t1),
        "project": Project(as_attr_list([2]), t1),
        "project-swap": Project(as_attr_list([2, 1]), t1),
        "xproject": ExtendedProject([col(1) + col(2), col(2)], t1),
        "union": Union(t1, t2),
        "difference": Difference(t1, t2),
        "intersect": Intersect(t1, t2),
        "equi-join": Join(t1, t2, col(1).eq(col(3))),
        "equi-join-residual": Join(
            t1, t2, col(1).eq(col(3)).and_(col(2).lt(col(4)))
        ),
        "theta-join": Join(t1, t2, col(1).lt(col(3))),
        "select-product": Select(col(1).eq(col(3)), Product(t1, t2)),
        "product": Product(t1, t2),
        "distinct": Unique(t1),
        "group-count": GroupBy([1], CNT, 2, t1),
        "group-sum": GroupBy([1], SUM, 2, t1),
        "group-avg": GroupBy([1], AVG, 2, t1),
        "group-scalar": GroupBy(None, SUM, 1, t1),
        "project-join": Project(
            as_attr_list([1, 4]), Join(t1, t2, col(2).eq(col(3)))
        ),
        "pipeline": Project(
            as_attr_list([1, 3]),
            Select(col(2).ge(lit(2)), Join(t1, Unique(t3), col(1).eq(col(3)))),
        ),
    }


OPERATOR_CASE_NAMES = sorted(
    _operator_cases(random_environment(tables=3, size=2, degree=2, seed=7))
)


@pytest.mark.parametrize("name", OPERATOR_CASE_NAMES)
def test_operator_agrees_with_both_engines(env, name):
    expr = _operator_cases(env)[name]
    reference = evaluate(expr, env)
    assert execute(expr, env) == reference, f"pairs != reference for {name}"
    assert execute(expr, env, engine="vector") == reference, (
        f"vector != reference for {name}"
    )
    chunked = collect_batches(plan_vector(expr, None, TINY_BATCH), env)
    assert chunked == reference, f"tiny batches diverge for {name}"


@pytest.mark.parametrize("seed", SEEDS)
def test_random_plans_agree(env, seed):
    generator = ExpressionGenerator(env, seed=seed, max_depth=5)
    expr = generator.expression()
    try:
        reference = evaluate(expr, env)
    except EmptyAggregateError:
        # Partial aggregates on an empty bag are defined behaviour
        # (Definition 3.3); the vector engine must refuse alike.
        with pytest.raises(EmptyAggregateError):
            execute(expr, env, engine="vector")
        return
    assert execute(expr, env, engine="vector") == reference, (
        f"vector != reference for {expr!r}"
    )
    assert execute(optimize(expr), env, engine="vector") == reference, (
        f"vector diverges on optimized {expr!r}"
    )


class TestCompiledVsInterpreted:
    """The compiler and the AST interpreter must be indistinguishable."""

    SCHEMA = RelationSchema("r", [("a", INTEGER), ("b", INTEGER)])

    @pytest.mark.parametrize(
        "expr",
        [
            col(1) + col(2),
            col(1) - lit(3) * col(2),
            (col(1) * lit(3)).ge(col(2)),
            Neg(col(1)),
            col(1).eq(col(2)).or_(col(1).lt(lit(0))),
            col(1).gt(lit(0)).and_(col(2).le(lit(5))).not_(),
            col(1) / col(2),
        ],
        ids=repr,
    )
    def test_compiled_matches_interpreter(self, expr):
        compiled = compile_row(expr, self.SCHEMA)
        interpreted = expr.bind(self.SCHEMA)
        for row in [(4, 2), (0, 3), (-7, 5), (6, -2)]:
            assert compiled(row) == interpreted(row), (expr, row)

    def test_division_by_zero_agrees(self):
        expr = col(1) / col(2)
        compiled = compile_row(expr, self.SCHEMA)
        interpreted = expr.bind(self.SCHEMA)
        with pytest.raises(DivisionByZeroError):
            compiled((1, 0))
        with pytest.raises(DivisionByZeroError):
            interpreted((1, 0))

    def test_division_by_zero_routing_through_engines(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        expr = Select((col(1) / (col(2) - col(2))).gt(lit(0)), t1)
        with pytest.raises(DivisionByZeroError):
            evaluate(expr, env)
        with pytest.raises(DivisionByZeroError):
            execute(expr, env)
        with pytest.raises(DivisionByZeroError):
            execute(expr, env, engine="vector")

    def test_money_arithmetic_falls_back_to_interpreter(self):
        schema = RelationSchema("price", [("item", STRING), ("amount", MONEY)])
        relation = Relation.from_pairs(
            schema,
            [
                (("a", Decimal("1.10")), 2),
                (("b", Decimal("2.35")), 1),
                (("c", Decimal("0.99")), 3),
            ],
        )
        env = {"price": relation}
        expr = Select(
            (col(2) + col(2)).gt(lit(Decimal("2.00"))),
            RelationRef("price", schema),
        )
        plan = plan_vector(expr)
        assert isinstance(plan, VFilterOp)
        assert plan.kernel is None, "MONEY arithmetic must refuse to lower"
        assert "(interpreted)" in plan.label()
        assert collect_batches(plan, env) == evaluate(expr, env)


class TestPlanShapes:
    """Vector-specific planner rewrites, pinned structurally."""

    def test_selection_stack_fuses_to_one_filter(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        expr = Select(col(1).ge(lit(2)), Select(col(2).le(lit(4)), t1))
        plan = plan_vector(expr)
        assert isinstance(plan, VFilterOp)
        assert not isinstance(plan.child, VFilterOp)

    def test_project_into_join_fusion(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        t2 = RelationRef("t2", env["t2"].schema)
        expr = Project(as_attr_list([1, 4]), Join(t1, t2, col(1).eq(col(3))))
        plan = plan_vector(expr)
        assert isinstance(plan, VHashJoinOp)
        assert tuple(plan.output_positions) == (0, 3)
        assert "+project" in plan.label()
        assert collect_batches(plan, env) == evaluate(expr, env)

    def test_group_by_fold_selection(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        assert plan_vector(GroupBy([1], CNT, 2, t1)).fold == "count"
        # SUM over an INTEGER parameter re-associates exactly.
        assert plan_vector(GroupBy([1], SUM, 2, t1)).fold == "sum"
        # AVG has no fold (measured slower than the bag path).
        assert plan_vector(GroupBy([1], AVG, 2, t1)).fold == "bag"

    def test_real_sum_stays_on_bag_path(self):
        # Float addition is order-sensitive; only the bag path replays
        # the pairs engine's accumulation order bit for bit.
        schema = RelationSchema("m", [("k", INTEGER), ("x", REAL)])
        relation = Relation.from_pairs(
            schema,
            [((i % 3, (i * 0.1) ** 2), 1 + i % 2) for i in range(30)],
        )
        env = {"m": relation}
        expr = GroupBy([1], SUM, 2, RelationRef("m", schema))
        plan = plan_vector(expr)
        assert isinstance(plan, VGroupByOp)
        assert plan.fold == "bag"
        reference = evaluate(expr, env)
        assert collect_batches(plan, env) == reference
        assert execute(expr, env) == reference


class TestEngineWiring:
    """Session/cache/analyze/parallel/CLI smoke on the vector engine."""

    @pytest.fixture()
    def database(self, env):
        db = Database()
        for relation in env.values():
            db.create_relation(relation.schema.strict(), relation)
        return db

    def _query(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        t2 = RelationRef("t2", env["t2"].schema)
        return Project(as_attr_list([1, 4]), Join(t1, t2, col(1).eq(col(3))))

    def test_session_engines_agree_and_cache_serves(self, env, database):
        expr = self._query(env)
        pairs = Session(database, engine="pairs")
        vector = Session(database, engine="vector", cache=True)
        expected = pairs.query(expr)
        assert vector.query(expr) == expected
        assert vector.query(expr) == expected  # served from cache
        assert vector.cache.stats.result_hits >= 1

    def test_engine_validation(self, database):
        with pytest.raises(ValueError):
            Session(database, engine="columnar")
        with pytest.raises(ValueError):
            Session(database, use_physical_engine=False, engine="vector")
        session = Session(database, use_physical_engine=False)
        with pytest.raises(ValueError):
            session.set_engine("vector")

    def test_transaction_queries_on_vector(self, env, database):
        session = Session(database, engine="vector")
        expr = self._query(env)
        with session.transaction() as txn:
            inside = txn.query(expr)
        assert inside == evaluate(expr, database.snapshot())

    def test_explain_analyze_annotates_vector_operators(self, env, database):
        session = Session(database, engine="vector")
        expr = self._query(env)
        report = session.explain_analyze(expr)
        assert report.find("v-hash-join")
        assert report.find("v-scan")
        assert report.result == evaluate(expr, database.snapshot())

    def test_parallel_scheduler_interop(self, env):
        expr = self._query(env)
        scheduler = make_scheduler(2, "serial")
        try:
            result = execute(expr, env, parallel=scheduler, engine="vector")
        finally:
            scheduler.close()
        assert result == evaluate(expr, env)

    def test_cli_engine_meta_command(self, database):
        from repro.cli import Shell

        out, err = io.StringIO(), io.StringIO()
        shell = Shell(database, out=out, err=err)
        shell.handle_meta(".engine vector")
        shell.run(io.StringIO("? sel[%1 >= 2](t1);\n"))
        assert "engine: vector" in out.getvalue()
        assert "tuple(s)" in out.getvalue()
        assert not err.getvalue()
