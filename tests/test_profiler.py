"""Tests for the operator-level execution profiler."""

import pytest

from repro.algebra import Product, RelationRef, Select
from repro.engine import evaluate
from repro.engine.profiler import execute_profiled
from repro.optimizer import optimize
from repro.workloads import tiny_beer_database


@pytest.fixture
def setup():
    db = tiny_beer_database()
    env = dict(db.as_env())
    beer = RelationRef("beer", env["beer"].schema)
    brewery = RelationRef("brewery", env["brewery"].schema)
    expr = Select(
        "%2 = %4 and %6 = 'Netherlands'", Product(beer, brewery)
    ).project(["%1"])
    return env, expr


class TestProfiler:
    def test_result_matches_reference(self, setup):
        env, expr = setup
        result, _profile = execute_profiled(expr, env)
        assert result == evaluate(expr, env)

    def test_profile_counts_rows(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        by_label = profile.by_label()
        assert by_label["scan beer"].rows_out == 6
        assert by_label["scan brewery"].rows_out == 4

    def test_join_fusion_visible_in_profile(self, setup):
        env, expr = setup
        # The planner fuses sigma-over-product into a hash join; the
        # profile should show join output far below the 24-row product.
        _result, profile = execute_profiled(expr, env)
        join_profiles = [
            p for p in profile.profiles if p.label.startswith("hash-join")
        ]
        assert join_profiles
        assert join_profiles[0].rows_out <= 6

    def test_join_emits_fewer_pairs_than_raw_product(self, setup):
        env, expr = setup
        beer = RelationRef("beer", env["beer"].schema)
        brewery = RelationRef("brewery", env["brewery"].schema)
        _r1, product_profile = execute_profiled(Product(beer, brewery), env)
        _r2, fused_profile = execute_profiled(expr, env)
        # The raw product emits |beer|·|brewery| pairs; the fused hash
        # join only the matches — the profiler makes the saving visible.
        product_pairs = product_profile.by_label()["product"].pairs_out
        join_pairs = [
            p for p in fused_profile.profiles if "hash-join" in p.label
        ][0].pairs_out
        assert product_pairs == 24
        assert join_pairs < product_pairs

    def test_report_renders(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        text = str(profile)
        assert "operator" in text
        assert "scan beer" in text

    def test_depths_follow_plan_shape(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        assert profile.profiles[0].depth == 0
        assert max(p.depth for p in profile.profiles) >= 1

    def test_group_by_and_distinct_profiled(self, setup):
        env, _expr = setup
        beer = RelationRef("beer", env["beer"].schema)
        expr = beer.group_by(["brewery"], "CNT", None).distinct()
        result, profile = execute_profiled(expr, env)
        assert result == evaluate(expr, env)
        labels = [p.label for p in profile.profiles]
        assert any("groupby" in label for label in labels)
        assert any("distinct" in label for label in labels)
