"""Tests for the operator-level execution profiler."""

import pytest

from repro.algebra import Product, RelationRef, Select
from repro.engine import evaluate
from repro.engine.profiler import execute_profiled
from repro.workloads import tiny_beer_database


@pytest.fixture
def setup():
    db = tiny_beer_database()
    env = dict(db.as_env())
    beer = RelationRef("beer", env["beer"].schema)
    brewery = RelationRef("brewery", env["brewery"].schema)
    expr = Select(
        "%2 = %4 and %6 = 'Netherlands'", Product(beer, brewery)
    ).project(["%1"])
    return env, expr


class TestProfiler:
    def test_result_matches_reference(self, setup):
        env, expr = setup
        result, _profile = execute_profiled(expr, env)
        assert result == evaluate(expr, env)

    def test_profile_counts_rows(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        by_label = profile.by_label()
        assert by_label["scan beer"].rows_out == 6
        assert by_label["scan brewery"].rows_out == 4

    def test_join_fusion_visible_in_profile(self, setup):
        env, expr = setup
        # The planner fuses sigma-over-product into a hash join; the
        # profile should show join output far below the 24-row product.
        _result, profile = execute_profiled(expr, env)
        join_profiles = [
            p for p in profile.profiles if p.label.startswith("hash-join")
        ]
        assert join_profiles
        assert join_profiles[0].rows_out <= 6

    def test_join_emits_fewer_pairs_than_raw_product(self, setup):
        env, expr = setup
        beer = RelationRef("beer", env["beer"].schema)
        brewery = RelationRef("brewery", env["brewery"].schema)
        _r1, product_profile = execute_profiled(Product(beer, brewery), env)
        _r2, fused_profile = execute_profiled(expr, env)
        # The raw product emits |beer|·|brewery| pairs; the fused hash
        # join only the matches — the profiler makes the saving visible.
        product_pairs = product_profile.by_label()["product"].pairs_out
        join_pairs = [
            p for p in fused_profile.profiles if "hash-join" in p.label
        ][0].pairs_out
        assert product_pairs == 24
        assert join_pairs < product_pairs

    def test_report_renders(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        text = str(profile)
        assert "operator" in text
        assert "scan beer" in text

    def test_depths_follow_plan_shape(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        assert profile.profiles[0].depth == 0
        assert max(p.depth for p in profile.profiles) >= 1

    def test_group_by_and_distinct_profiled(self, setup):
        env, _expr = setup
        beer = RelationRef("beer", env["beer"].schema)
        expr = beer.group_by(["brewery"], "CNT", None).distinct()
        result, profile = execute_profiled(expr, env)
        assert result == evaluate(expr, env)
        labels = [p.label for p in profile.profiles]
        assert any("groupby" in label for label in labels)
        assert any("distinct" in label for label in labels)


class TestProfileReportErgonomics:
    def test_stable_plan_preorder_ordering(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        indexes = [p.index for p in profile.profiles]
        assert indexes == sorted(indexes)
        # Shuffled input comes back out in plan order.
        from repro.engine.profiler import ProfileReport

        reshuffled = ProfileReport(list(reversed(profile.profiles)))
        assert [p.index for p in reshuffled.profiles] == indexes

    def test_total_seconds_is_root_inclusive_time(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        assert profile.total_seconds == profile.profiles[0].seconds
        assert profile.total_seconds >= 0.0

    def test_exclusive_seconds_never_negative(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        for entry in profile.profiles:
            assert profile.exclusive_seconds(entry) >= 0.0

    def test_exclusive_seconds_clamps_fast_children(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        # Force the pathological case: a parent that (by timer noise)
        # appears faster than its children must clamp at zero.
        root = profile.profiles[0]
        root.seconds = 0.0
        assert profile.exclusive_seconds(root) == 0.0

    def test_report_shows_exclusive_column(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        assert "excl ms" in str(profile)

    def test_op_class_recorded(self, setup):
        env, expr = setup
        _result, profile = execute_profiled(expr, env)
        classes = {p.op_class for p in profile.profiles}
        assert "scan" in classes
        assert "hash-join" in classes

    def test_emit_metrics_shares_data_model(self, setup):
        from repro.obs import MetricsRegistry

        env, expr = setup
        registry = MetricsRegistry()
        _result, profile = execute_profiled(expr, env, registry=registry)
        scans = profile.by_label()["scan beer"]
        assert registry.total("operator.rows") == profile.total_rows()
        assert registry.value("operator.pairs", op="hash-join") > 0
        assert scans.rows_out > 0


class TestProfilerEmptyRelation:
    def test_profile_on_empty_relation(self):
        from repro.domains import INTEGER
        from repro.relation import Relation
        from repro.schema import RelationSchema

        schema = RelationSchema.of("empty", a=INTEGER)
        env = {"empty": Relation.empty(schema)}
        ref = RelationRef("empty", schema)
        expr = ref.select("a > 0").project(["a"])
        result, profile = execute_profiled(expr, env)
        assert len(result) == 0
        assert profile.total_pairs() == 0
        assert profile.total_rows() == 0
        assert profile.total_seconds >= 0.0
        for entry in profile.profiles:
            assert profile.exclusive_seconds(entry) >= 0.0
        assert "scan empty" in str(profile)

    def test_empty_report(self):
        from repro.engine.profiler import ProfileReport

        report = ProfileReport([])
        assert report.total_seconds == 0.0
        assert report.total_pairs() == 0
        assert str(report)
