"""Unit tests for relations and their reference operators (Defs 2.2-2.4, 3.1-3.4)."""

import pytest

from repro.aggregates import AVG, CNT, MAX, MIN, SUM
from repro.domains import INTEGER, REAL, STRING
from repro.errors import EmptyAggregateError, SchemaMismatchError
from repro.multiset import Multiset
from repro.relation import Relation
from repro.schema import RelationSchema


@pytest.fixture
def schema():
    return RelationSchema.of("t", a=INTEGER, b=STRING)


@pytest.fixture
def r(schema):
    return Relation(schema, [(1, "x"), (1, "x"), (2, "y")])


class TestConstruction:
    def test_rows_counted(self, r):
        assert len(r) == 3
        assert r.distinct_count == 2
        assert r.multiplicity((1, "x")) == 2

    def test_values_normalised(self, schema):
        real_schema = RelationSchema.of("u", a=REAL)
        relation = Relation(real_schema, [(1,), (1.0,)])
        assert relation.multiplicity((1.0,)) == 2

    def test_from_pairs(self, schema):
        relation = Relation.from_pairs(schema, [((1, "x"), 5)])
        assert relation.multiplicity((1, "x")) == 5

    def test_from_mapping(self, schema):
        relation = Relation(schema, {(1, "x"): 3})
        assert relation.multiplicity((1, "x")) == 3

    def test_empty(self, schema):
        relation = Relation.empty(schema)
        assert not relation
        assert len(relation) == 0

    def test_membership(self, r):
        assert (1, "x") in r
        assert (9, "z") not in r
        assert ("wrong", "shape") not in r  # bad values are just absent

    def test_iteration_repeats(self, r):
        assert sorted(r) == [(1, "x"), (1, "x"), (2, "y")]

    def test_rows_sorted_deterministic(self, r):
        assert r.rows_sorted() == [(1, "x"), (1, "x"), (2, "y")]


class TestComparisons:
    def test_equality_ignores_attribute_names(self, r, schema):
        other_schema = RelationSchema.of("u", p=INTEGER, q=STRING)
        other = Relation(other_schema, [(1, "x"), (1, "x"), (2, "y")])
        assert r == other

    def test_inequality_on_multiplicity(self, r, schema):
        other = Relation(schema, [(1, "x"), (2, "y")])
        assert r != other

    def test_incompatible_schemas_not_equal(self, r):
        other = Relation(RelationSchema.of("u", a=INTEGER), [(1,)])
        assert r != other

    def test_submultiset(self, r, schema):
        small = Relation(schema, [(1, "x")])
        assert small.issubmultiset(r)
        assert small <= r
        assert not r.issubmultiset(small)

    def test_submultiset_schema_checked(self, r):
        other = Relation(RelationSchema.of("u", a=INTEGER), [(1,)])
        with pytest.raises(SchemaMismatchError):
            r.issubmultiset(other)

    def test_hashable(self, r, schema):
        same = Relation(schema, [(2, "y"), (1, "x"), (1, "x")])
        assert hash(r) == hash(same)


class TestBasicOperators:
    def test_union_definition(self, r, schema):
        other = Relation(schema, [(1, "x"), (3, "z")])
        result = r.union(other)
        assert result.multiplicity((1, "x")) == 3
        assert result.multiplicity((3, "z")) == 1

    def test_union_schema_mismatch(self, r):
        other = Relation(RelationSchema.of("u", a=INTEGER), [(1,)])
        with pytest.raises(SchemaMismatchError, match="union"):
            r.union(other)

    def test_difference_monus(self, r, schema):
        other = Relation(schema, [(1, "x"), (1, "x"), (1, "x"), (2, "y")])
        result = r.difference(other)
        assert not result

    def test_product_multiplies(self, r):
        other = Relation(RelationSchema.of("u", c=INTEGER), [(7,), (7,)])
        result = r.product(other)
        assert result.schema.degree == 3
        assert result.multiplicity((1, "x", 7)) == 4  # 2 * 2

    def test_select_keeps_multiplicity(self, r):
        result = r.select(lambda row: row[0] == 1)
        assert result.multiplicity((1, "x")) == 2
        assert len(result) == 2

    def test_project_sums_multiplicities(self, r):
        result = r.project(["a"])
        assert result.multiplicity((1,)) == 2
        assert result.multiplicity((2,)) == 1
        assert len(result) == len(r)  # no dedup

    def test_project_by_name_and_index(self, r):
        assert r.project(["b", "%1"]).schema.names() == ("b", "a")


class TestStandardOperators:
    def test_intersection_is_min(self, r, schema):
        other = Relation(schema, [(1, "x"), (9, "q")])
        result = r.intersection(other)
        assert result.multiplicity((1, "x")) == 1
        assert (2, "y") not in result

    def test_join_is_selected_product(self, r):
        other = Relation(RelationSchema.of("u", c=INTEGER), [(1,), (2,)])
        joined = r.join(other, lambda row: row[0] == row[2])
        assert joined.multiplicity((1, "x", 1)) == 2
        assert joined.multiplicity((2, "y", 2)) == 1
        assert len(joined) == 3


class TestExtendedOperators:
    def test_extended_project(self, r):
        out_schema = RelationSchema.anonymous([INTEGER])
        result = r.extended_project([lambda row: row[0] * 10], out_schema)
        assert result.multiplicity((10,)) == 2

    def test_extended_project_arity_checked(self, r):
        out_schema = RelationSchema.anonymous([INTEGER, INTEGER])
        with pytest.raises(ValueError):
            r.extended_project([lambda row: row[0]], out_schema)

    def test_distinct(self, r):
        result = r.distinct()
        assert len(result) == 2
        assert result.multiplicity((1, "x")) == 1

    def test_group_by_with_attrs(self):
        schema = RelationSchema.of("s", k=STRING, v=INTEGER)
        relation = Relation(schema, [("a", 1), ("a", 1), ("a", 3), ("b", 10)])
        result = relation.group_by(["k"], SUM, "v")
        assert result.multiplicity(("a", 5)) == 1  # duplicates counted: 1+1+3
        assert result.multiplicity(("b", 10)) == 1
        assert result.schema.names() == ("k", "sum_v")

    def test_group_by_empty_attrs_single_tuple(self, r):
        result = r.group_by([], CNT, None)
        assert list(result.pairs()) == [((3,), 1)]
        assert result.schema.degree == 1

    def test_group_by_duplicate_attrs_rejected(self, r):
        with pytest.raises(ValueError):
            r.group_by(["a", "%1"], CNT, None)

    def test_group_by_avg_respects_multiplicity(self):
        schema = RelationSchema.of("s", k=STRING, v=REAL)
        relation = Relation(schema, [("a", 1.0), ("a", 1.0), ("a", 4.0)])
        result = relation.group_by(["k"], AVG, "v")
        assert result.multiplicity(("a", 2.0)) == 1  # (1+1+4)/3

    def test_aggregate_scalar(self, r):
        assert r.aggregate(CNT, None) == 3
        assert r.aggregate(MIN, "a") == 1
        assert r.aggregate(MAX, "a") == 2

    def test_aggregate_empty_partial(self, schema):
        empty = Relation.empty(schema)
        assert empty.aggregate(CNT, None) == 0
        with pytest.raises(EmptyAggregateError):
            empty.aggregate(MIN, "a")


class TestConvenience:
    def test_rename(self, r):
        assert r.rename("renamed").schema.name == "renamed"
        assert r.rename("renamed") == r  # contents unchanged

    def test_with_attribute_names(self, r):
        renamed = r.with_attribute_names(["x", "y"])
        assert renamed.schema.names() == ("x", "y")

    def test_from_multiset_adopts(self, schema):
        bag = Multiset({(1, "x"): 2})
        relation = Relation.from_multiset(schema, bag)
        assert relation.multiplicity((1, "x")) == 2

    def test_repr(self, r):
        assert "tuples=3" in repr(r)
        assert "distinct=2" in repr(r)
