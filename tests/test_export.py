"""Direct tests for the exporters in ``repro.obs.export``.

Covers ``render_summary`` (the text behind the CLI's ``.metrics``), the
JSONL batch export round-trip (emit → parse → same records), the
streaming sink, and the Chrome trace-event exporter fed by both tracer
spans and EXPLAIN ANALYZE reports.
"""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    JsonLinesSink,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    render_summary,
)


@pytest.fixture(autouse=True)
def _isolate_obs():
    obs.reset()
    yield
    obs.reset()


def traced_work():
    """A small finished trace: root span with two children."""
    tracer = Tracer()
    with tracer.span("statement", text="? beer"):
        with tracer.span("optimize"):
            pass
        with tracer.span("execute", rows=6):
            pass
    return tracer


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("session.queries").inc(3)
    registry.counter("operator.rows", op="scan").inc(60)
    registry.gauge("cache.bytes").set(1024)
    histogram = registry.histogram("operator.seconds", op="scan")
    for value in (0.001, 0.002, 0.003, 0.100):
        histogram.observe(value)
    return registry


class TestRenderSummary:
    def test_metrics_table_contents(self):
        text = render_summary(sample_registry())
        assert "session.queries" in text
        assert "operator.rows{op=scan}" in text
        assert "cache.bytes" in text
        # Histograms render percentiles, not mean-only.
        assert "p50=" in text and "p95=" in text and "p99=" in text

    def test_trace_line_appended(self):
        tracer = traced_work()
        text = render_summary(sample_registry(), tracer)
        assert text.endswith("trace: 3 span(s) recorded")

    def test_empty_registry(self):
        assert "(no metrics recorded)" in render_summary(MetricsRegistry())


class TestJsonlRoundTrip:
    def test_spans_and_metrics_round_trip(self, tmp_path):
        tracer = traced_work()
        registry = sample_registry()
        path = str(tmp_path / "trace.jsonl")
        written = export_jsonl(path, tracer=tracer, metrics=registry)
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8").read().splitlines()
        ]
        assert len(lines) == written == 3 + len(registry)
        spans = [record for record in lines if record["event"] == "span"]
        metrics = [record for record in lines if record["event"] == "metric"]
        # Batch export is in start order: parents before children.
        assert [record["name"] for record in spans] == [
            "statement", "optimize", "execute",
        ]
        assert spans[0]["parent"] is None
        assert spans[1]["parent"] == spans[0]["index"]
        assert spans[0]["attrs"] == {"text": "? beer"}
        # The parsed metric records match a fresh snapshot exactly.
        assert metrics == registry.snapshot()

    def test_histogram_record_carries_percentiles(self):
        registry = sample_registry()
        [histogram] = [
            record
            for record in registry.snapshot()
            if record["kind"] == "histogram"
        ]
        assert histogram["count"] == 4
        assert histogram["p50"] == 0.002
        assert histogram["p99"] == 0.100
        assert histogram["min"] == 0.001

    def test_stream_handle_not_closed(self):
        buffer = io.StringIO()
        export_jsonl(buffer, metrics=sample_registry())
        assert not buffer.closed
        assert buffer.getvalue().count("\n") == len(sample_registry())

    def test_streaming_sink_emits_on_close(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=JsonLinesSink(buffer))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        # Streaming order is completion order: children first.
        assert [record["name"] for record in records] == ["inner", "outer"]


class TestChromeTrace:
    def test_span_events(self):
        events = chrome_trace_events(tracer=traced_work())
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 3
        names = {event["name"] for event in complete}
        assert names == {"statement", "optimize", "execute"}
        root = next(e for e in complete if e["name"] == "statement")
        assert root["ts"] == 0.0  # normalised to the earliest span
        for event in complete:
            assert event["dur"] >= 0
            # Children are contained in the root's interval.
            assert event["ts"] + event["dur"] <= root["ts"] + root["dur"] + 1e-6

    def test_analyze_report_events(self):
        from repro.algebra import RelationRef, Select
        from repro.obs.analyze import analyze
        from repro.workloads import join_chain_relations

        [relation] = join_chain_relations(1, [20], [4, 4], seed=1)
        env = {relation.schema.name: relation}
        expr = Select("%1 = 1", RelationRef(relation.schema.name, relation.schema))
        report = analyze(expr, env)
        events = chrome_trace_events(analyze=report)
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == len(report.operators)
        for event, op in zip(complete, report.operators):
            assert event["tid"] == op.depth + 1  # flame-graph lanes by depth
            assert event["args"]["rows"] == op.rows
            assert event["args"]["est_rows"] == op.est_rows

    def test_export_file_is_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = export_chrome_trace(path, tracer=traced_work())
        payload = json.load(open(path, encoding="utf-8"))
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == count
        assert any(event["ph"] == "M" for event in payload["traceEvents"])

    def test_empty_inputs_produce_empty_trace(self):
        assert chrome_trace_events() == []
        assert chrome_trace_events(tracer=Tracer(), analyze=[]) == []
