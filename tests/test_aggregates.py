"""Unit tests for aggregate functions (Definition 3.3)."""

from decimal import Decimal

import pytest

from repro.aggregates import (
    AVG,
    CNT,
    MAX,
    MEDIAN,
    MIN,
    STDEV,
    SUM,
    VAR,
    resolve_aggregate,
)
from repro.domains import INTEGER, MONEY, REAL, STRING
from repro.errors import EmptyAggregateError, ExpressionTypeError
from repro.multiset import Multiset
from repro.schema import RelationSchema

NUM_SCHEMA = RelationSchema.of("t", v=REAL)
INT_SCHEMA = RelationSchema.of("t", v=INTEGER)
STR_SCHEMA = RelationSchema.of("t", v=STRING)
MONEY_SCHEMA = RelationSchema.of("t", v=MONEY)


class TestCount:
    def test_counts_duplicates(self):
        assert CNT.compute(Multiset({1: 3, 2: 1})) == 4

    def test_empty_is_zero_not_error(self):
        # CNT is total: it is 0 on the empty bag.
        assert CNT.compute(Multiset()) == 0

    def test_dummy_parameter(self):
        # "included only for reasons of syntactical uniformity"
        CNT.check_input(NUM_SCHEMA, None)  # no error
        CNT.check_input(STR_SCHEMA, 1)  # any attribute is fine

    def test_output(self):
        assert CNT.output_domain(NUM_SCHEMA, None) == INTEGER
        assert CNT.output_name(None, NUM_SCHEMA) == "cnt"


class TestSum:
    def test_weighted_by_multiplicity(self):
        # SUM_p E = sum of x.p * E(x)
        assert SUM.compute(Multiset({2.0: 3, 5.0: 1})) == 11.0

    def test_empty_sum_is_zero(self):
        assert SUM.compute(Multiset()) == 0

    def test_requires_numeric(self):
        with pytest.raises(ExpressionTypeError):
            SUM.check_input(STR_SCHEMA, 1)

    def test_requires_parameter(self):
        with pytest.raises(ExpressionTypeError):
            SUM.check_input(NUM_SCHEMA, None)

    def test_money_stays_exact(self):
        total = SUM.compute(Multiset({Decimal("0.10"): 3}))
        assert total == Decimal("0.30")

    def test_output_domain_follows_attribute(self):
        assert SUM.output_domain(INT_SCHEMA, 1) == INTEGER
        assert SUM.output_domain(NUM_SCHEMA, 1) == REAL
        assert SUM.output_domain(MONEY_SCHEMA, 1) == MONEY

    def test_output_name(self):
        assert SUM.output_name(1, NUM_SCHEMA) == "sum_v"


class TestAverage:
    def test_is_sum_over_count(self):
        assert AVG.compute(Multiset({1.0: 1, 4.0: 1})) == 2.5

    def test_multiplicity_matters(self):
        # This asymmetry is Example 3.2's crux.
        assert AVG.compute(Multiset({1.0: 3, 4.0: 1})) == 1.75

    def test_partial_on_empty(self):
        with pytest.raises(EmptyAggregateError):
            AVG.compute(Multiset())

    def test_money_average_quantized(self):
        result = AVG.compute(Multiset({Decimal("1.00"): 1, Decimal("2.00"): 2}))
        assert result == Decimal("1.67")

    def test_output_domain(self):
        assert AVG.output_domain(INT_SCHEMA, 1) == REAL
        assert AVG.output_domain(MONEY_SCHEMA, 1) == MONEY


class TestMinMax:
    def test_min_max(self):
        bag = Multiset({3: 1, 1: 5, 2: 1})
        assert MIN.compute(bag) == 1
        assert MAX.compute(bag) == 3

    def test_partial_on_empty(self):
        with pytest.raises(EmptyAggregateError):
            MIN.compute(Multiset())
        with pytest.raises(EmptyAggregateError):
            MAX.compute(Multiset())

    def test_ordered_requirement(self):
        # Strings are ordered, so MIN/MAX are fine on them...
        MIN.check_input(STR_SCHEMA, 1)
        # ...and they keep the attribute's domain.
        assert MIN.output_domain(STR_SCHEMA, 1) == STRING

    def test_min_on_strings(self):
        assert MIN.compute(Multiset({"pils": 1, "bock": 2})) == "bock"


class TestStatisticalExtensions:
    def test_variance_population(self):
        bag = Multiset({2.0: 2, 4.0: 2})
        assert VAR.compute(bag) == 1.0

    def test_stdev(self):
        bag = Multiset({2.0: 2, 4.0: 2})
        assert STDEV.compute(bag) == 1.0

    def test_variance_weighted(self):
        assert VAR.compute(Multiset({0.0: 1, 3.0: 3})) == pytest.approx(
            ((0 - 2.25) ** 2 + 3 * (3 - 2.25) ** 2) / 4
        )

    def test_median_odd(self):
        assert MEDIAN.compute(Multiset({1.0: 1, 2.0: 1, 9.0: 1})) == 2.0

    def test_median_even_averages(self):
        assert MEDIAN.compute(Multiset({1.0: 1, 3.0: 1})) == 2.0

    def test_median_respects_multiplicity(self):
        assert MEDIAN.compute(Multiset({1.0: 3, 100.0: 1})) == 1.0

    def test_all_partial_on_empty(self):
        for aggregate in (VAR, STDEV, MEDIAN):
            with pytest.raises(EmptyAggregateError):
                aggregate.compute(Multiset())


class TestResolve:
    def test_by_name_case_insensitive(self):
        assert resolve_aggregate("avg") is AVG
        assert resolve_aggregate("CNT") is CNT

    def test_sql_count_alias(self):
        assert resolve_aggregate("COUNT") is CNT

    def test_unknown(self):
        with pytest.raises(ExpressionTypeError, match="known"):
            resolve_aggregate("MODE")

    def test_identity_semantics(self):
        from repro.aggregates import Average

        assert AVG == Average()
        assert AVG != SUM
        assert len({AVG, Average()}) == 1


class TestCountDistinct:
    def test_counts_support(self):
        from repro.aggregates import CNTD

        assert CNTD.compute(Multiset({1: 5, 2: 1})) == 2

    def test_empty_is_zero(self):
        from repro.aggregates import CNTD

        assert CNTD.compute(Multiset()) == 0

    def test_requires_parameter(self):
        from repro.aggregates import CNTD

        with pytest.raises(ExpressionTypeError):
            CNTD.check_input(NUM_SCHEMA, None)
        CNTD.check_input(STR_SCHEMA, 1)  # any domain works

    def test_in_group_by(self):
        from repro.aggregates import CNTD
        from repro.relation import Relation
        from repro.schema import RelationSchema
        from repro.domains import STRING

        schema = RelationSchema.of("s", k=STRING, v=STRING)
        relation = Relation(
            schema, [("a", "x"), ("a", "x"), ("a", "y"), ("b", "x")]
        )
        cnt = relation.group_by(["k"], resolve_aggregate("CNT"), None)
        cntd = relation.group_by(["k"], CNTD, "v")
        assert cnt.multiplicity(("a", 3)) == 1
        assert cntd.multiplicity(("a", 2)) == 1  # bag CNT vs distinct CNTD

    def test_resolvable_and_sql_usable(self):
        from repro.aggregates import CNTD
        from repro.sql import sql_to_algebra
        from repro.workloads import tiny_beer_database
        from repro.engine import evaluate

        assert resolve_aggregate("cntd") is CNTD
        db = tiny_beer_database()
        expr = sql_to_algebra("SELECT CNTD(name) FROM beer", db.schema)
        result = evaluate(expr, dict(db.as_env()))
        assert list(result.pairs()) == [((5,), 1)]  # 6 beers, 5 names
