"""Per-rule soundness: every optimizer rewrite preserves bag equality.

The differential suite (:mod:`tests.test_differential`) checks the
*composed* optimizer pipeline; a rule that only fires inside the
pipeline could still hide behind its neighbours.  Here every rule
registered in :mod:`repro.optimizer.rules` is exercised *in isolation*:
a single-rule :class:`~repro.optimizer.Rewriter` runs over (a) a
crafted expression guaranteed to make the rule fire and (b) a
randomized corpus, and each rewrite that actually fired must evaluate
to the same bag (tuples *and* multiplicities) under the reference
evaluator.  Rule discovery is by introspection, so a new rule added
without a crafted shape fails ``test_every_rule_has_a_crafted_shape``
instead of silently escaping coverage.

The join reorderer (not a local rule — it rewrites whole clusters) gets
the same treatment at the end.
"""

from __future__ import annotations

import inspect

import pytest

from repro.algebra import (
    Join,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
)
from repro.engine import evaluate
from repro.errors import EmptyAggregateError
from repro.expressions import parse_expression
from repro.optimizer import rules as rules_module
from repro.optimizer.join_order import reorder_joins
from repro.optimizer.rewriter import Rewriter
from repro.optimizer.rules import Rule
from repro.schema import AttrList
from repro.testing import ExpressionGenerator, random_environment

ALL_RULES = sorted(
    (
        cls
        for _, cls in inspect.getmembers(rules_module, inspect.isclass)
        if issubclass(cls, Rule) and cls is not Rule
    ),
    key=lambda cls: cls.name,
)

RANDOM_SEEDS = range(25)


@pytest.fixture(scope="module")
def env():
    return random_environment(
        tables=3, size=40, degree=2, value_space=5, seed=11
    )


def ref(env, name):
    return RelationRef(name, env[name].schema)


def crafted_expressions(rule_name, env):
    """Hand-built trees guaranteed to make the named rule fire."""
    t1, t2 = ref(env, "t1"), ref(env, "t2")
    if rule_name == "split-select":
        return [Select(parse_expression("%1 > 2 and %2 < 4"), t1)]
    if rule_name == "merge-selects":
        return [
            Select(
                parse_expression("%1 > 2"),
                Select(parse_expression("%2 < 4"), t1),
            )
        ]
    if rule_name == "push-select-union":
        return [Select(parse_expression("%1 > 2"), Union(t1, t2))]
    if rule_name == "push-project-union":
        return [Project(AttrList([2, 1]), Union(t1, t2))]
    if rule_name == "push-select-product":
        return [
            # One-sided on the left operand…
            Select(parse_expression("%1 > 2"), Product(t1, t2)),
            # …and on the right operand, through a join.
            Select(
                parse_expression("%4 < 3"),
                Join(t1, t2, parse_expression("%1 = %3")),
            ),
        ]
    if rule_name == "push-select-project":
        return [
            Select(
                parse_expression("%1 > 2"), Project(AttrList([2, 1]), t1)
            )
        ]
    if rule_name == "select-product-to-join":
        return [Select(parse_expression("%1 = %3"), Product(t1, t2))]
    if rule_name == "select-into-join":
        return [
            Select(
                parse_expression("%2 = %4"),
                Join(t1, t2, parse_expression("%1 = %3")),
            )
        ]
    if rule_name == "merge-projects":
        return [
            Project(AttrList([2]), Project(AttrList([2, 1]), t1))
        ]
    return []


def assert_bag_equal(original, rewritten, env, context):
    try:
        before = evaluate(original, env)
    except EmptyAggregateError:
        with pytest.raises(EmptyAggregateError):
            evaluate(rewritten, env)
        return
    after = evaluate(rewritten, env)
    assert after == before, (
        f"{context}: rewrite changed semantics\n"
        f"  before: {original!r}\n  after:  {rewritten!r}"
    )


def test_every_rule_has_a_crafted_shape(env):
    missing = [
        cls.name for cls in ALL_RULES if not crafted_expressions(cls.name, env)
    ]
    assert not missing, (
        f"rules without a guaranteed-fire crafted expression: {missing}"
    )


@pytest.mark.parametrize("rule_cls", ALL_RULES, ids=lambda cls: cls.name)
def test_rule_fires_and_preserves_bags_on_crafted_shapes(rule_cls, env):
    rule = rule_cls()
    shapes = crafted_expressions(rule.name, env)
    if not shapes:
        pytest.skip(
            f"no crafted expression drives {rule.name} in isolation; "
            "covered only via the randomized corpus"
        )
    for expr in shapes:
        rewritten = rule.apply(expr)
        assert rewritten is not None, (
            f"{rule.name} did not fire on its crafted shape {expr!r}"
        )
        assert_bag_equal(expr, rewritten, env, f"{rule.name} (crafted)")


@pytest.mark.parametrize("rule_cls", ALL_RULES, ids=lambda cls: cls.name)
def test_rule_preserves_bags_on_random_corpus(rule_cls, env):
    """A single-rule rewriter over random trees never changes the bag."""
    rule = rule_cls()
    rewriter = Rewriter([rule])
    fired = 0
    for seed in RANDOM_SEEDS:
        generator = ExpressionGenerator(env, seed=seed, max_depth=4)
        for _ in range(4):
            expr = generator.expression()
            trace = []
            rewritten = rewriter.rewrite(expr, trace)
            if not trace:
                continue
            fired += len(trace)
            assert_bag_equal(
                expr, rewritten, env, f"{rule.name} (seed {seed})"
            )
    if fired == 0:
        # Keep the skip loud: the crafted-shape test above still proves
        # the rule sound; this records that random trees missed it.
        pytest.skip(
            f"{rule.name} never fired on the randomized corpus "
            "(crafted-shape test covers it)"
        )


def join_clusters(env):
    """Crafted multi-way ×/⋈ clusters the reorderer can re-associate."""
    t1, t2, t3 = (ref(env, name) for name in ("t1", "t2", "t3"))
    narrow = [Project(AttrList([1]), leaf) for leaf in (t1, t2, t3)]
    a, b, c = narrow
    chain = Join(
        Join(a, b, parse_expression("%1 = %2")),
        c,
        parse_expression("%2 = %3"),
    )
    selective_late = Join(
        Product(a, b),
        Select(parse_expression("%1 = 0"), c),
        parse_expression("%2 = %3"),
    )
    products = Product(Product(a, b), Select(parse_expression("%1 < 2"), c))
    return [chain, selective_late, products]


def test_join_reorder_preserves_bags(env):
    """reorder_joins over crafted and random clusters keeps bag equality."""
    from repro.engine import StatisticsCatalog

    catalog = StatisticsCatalog.from_env(env)
    reshaped = 0
    for index, expr in enumerate(join_clusters(env)):
        reordered = reorder_joins(expr, catalog)
        if reordered._signature() != expr._signature():
            reshaped += 1
        assert_bag_equal(expr, reordered, env, f"reorder (cluster {index})")
    for seed in RANDOM_SEEDS:
        generator = ExpressionGenerator(env, seed=seed, max_depth=4)
        for _ in range(4):
            expr = generator.expression()
            reordered = reorder_joins(expr, catalog)
            if reordered._signature() != expr._signature():
                reshaped += 1
            assert_bag_equal(expr, reordered, env, f"reorder (seed {seed})")
    assert reshaped > 0, "no cluster exercised the join reorderer"
