"""The paper's worked examples, reproduced exactly.

* Example 3.1 — names of beers brewed in the Netherlands, duplicates
  preserved;
* Example 3.2 — average alcohol percentage per country, with and without
  the intermediate projection (equal under bag semantics, different —
  and wrong — under set semantics), plus the SQL formulation;
* Theorem 3.1 proof case split — the min/monus equality;
* Example 4.1 — the Guineken +10% update, algebra and SQL forms.
"""

import pytest

from repro.algebra import RelationRef, Select
from repro.engine import evaluate, evaluate_set
from repro.language import Session, Update
from repro.sql import sql_to_algebra, sql_to_statement
from repro.workloads import tiny_beer_database
from repro.workloads.beer import BEER_SCHEMA, BREWERY_SCHEMA


@pytest.fixture
def db():
    return tiny_beer_database()


@pytest.fixture
def env(db):
    return {"beer": db["beer"], "brewery": db["brewery"]}


def beer():
    return RelationRef("beer", BEER_SCHEMA)


def brewery():
    return RelationRef("brewery", BREWERY_SCHEMA)


class TestExample31:
    """π_%1(σ_{%6='Netherlands'}(beer ⋈_{%2=%4} brewery))"""

    def expression(self):
        return (
            beer()
            .join(brewery(), "%2 = %4")
            .select("%6 = 'Netherlands'")
            .project(["%1"])
        )

    def test_result_contains_duplicates(self, env):
        result = evaluate(self.expression(), env)
        # Both Guineken and Grolsch brew a "Pils": the multiset contains
        # the name twice — the paper's point about duplicate results.
        assert result.multiplicity(("Pils",)) == 2
        assert result.multiplicity(("Bock",)) == 1
        assert ("Tripel",) not in result  # Belgian
        assert len(result) == 3

    def test_set_semantics_loses_the_duplicate(self, env):
        result = evaluate_set(self.expression(), env)
        assert result.multiplicity(("Pils",)) == 1  # information lost


class TestExample32:
    """Γ_{(country),AVG,alcperc}(beer ⋈ brewery) — two formulations."""

    def direct(self):
        return beer().join(brewery(), "%2 = %4").group_by(["%6"], "AVG", "%3")

    def with_projection(self):
        # "To reduce the size of intermediate results ... a projection
        # operator may be inserted":
        return (
            beer()
            .join(brewery(), "%2 = %4")
            .project(["%3", "%6"])
            .group_by(["%2"], "AVG", "%1")
        )

    def test_expected_averages(self, env):
        result = evaluate(self.direct(), env)
        # Netherlands: (4.5 + 4.5 + 6.5) / 3; Belgium: (9.5 + 7.0) / 2.
        assert result.multiplicity(("Netherlands", 15.5 / 3)) == 1
        assert result.multiplicity(("Belgium", 8.25)) == 1
        assert result.multiplicity(("Ireland", 4.2)) == 1

    def test_bag_semantics_both_formulations_agree(self, env):
        assert evaluate(self.direct(), env) == evaluate(self.with_projection(), env)

    def test_set_semantics_diverges_and_is_wrong(self, env):
        """The paper: "the second expression produces a different (and
        incorrect) result!" — the two Dutch 4.5% Pils collapse."""
        direct = evaluate_set(self.direct(), env)
        projected = evaluate_set(self.with_projection(), env)
        assert direct != projected
        # Set semantics averages {4.5, 6.5}, not {4.5, 4.5, 6.5}.
        assert projected.multiplicity(("Netherlands", 5.5)) == 1
        assert projected.multiplicity(("Netherlands", 15.5 / 3)) == 0

    def test_sql_formulation_matches(self, db, env):
        query = sql_to_algebra(
            "SELECT country, AVG(alcperc) FROM beer, brewery "
            "WHERE beer.brewery = brewery.name GROUP BY country",
            db.schema,
        )
        assert evaluate(query, env) == evaluate(self.direct(), env)


class TestTheorem31ProofCases:
    """The proof's case split: min via double monus, both orderings."""

    def test_case_e1_leq_e2(self):
        assert max(0, 2 - max(0, 2 - 5)) == min(2, 5)

    def test_case_e1_gt_e2(self):
        assert max(0, 5 - max(0, 5 - 2)) == min(5, 2)

    def test_full_equivalence_on_example_data(self, env):
        strong = Select("alcperc > 5.0", beer())
        lhs = beer().intersection(strong)
        rhs = beer().difference(beer().difference(strong))
        assert evaluate(lhs, env) == evaluate(rhs, env)


class TestExample41:
    """update(beer, σ_{brewery='Guineken'} beer, (name, brewery, alcperc*1.1))"""

    def test_algebra_form(self, db):
        session = Session(db)
        selector = Select("brewery = 'Guineken'", beer())
        session.run([Update("beer", selector, ["%1", "%2", "%3 * 1.1"])])
        result = db["beer"]
        assert result.multiplicity(("Pils", "Guineken", 4.95)) == 1
        assert ("Pils", "Guineken", 4.5) not in result
        # Non-Guineken tuples untouched.
        assert result.multiplicity(("Pils", "Grolsch", 4.5)) == 1
        assert len(result) == 6

    def test_sql_form_matches_algebra_form(self):
        database_a = tiny_beer_database()
        database_b = tiny_beer_database()
        Session(database_a).run(
            [
                Update(
                    "beer",
                    Select("brewery = 'Guineken'", beer()),
                    ["%1", "%2", "%3 * 1.1"],
                )
            ]
        )
        statement = sql_to_statement(
            "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'",
            database_b.schema,
        )
        Session(database_b).run([statement])
        assert database_a["beer"] == database_b["beer"]

    def test_update_advances_logical_time(self, db):
        session = Session(db)
        before = db.logical_time
        session.update(
            "beer",
            Select("brewery = 'Guineken'", beer()),
            ["%1", "%2", "%3 * 1.1"],
        )
        assert db.logical_time == before + 1
        transition = db.transitions[-1]
        assert transition.changed_relations() == ["beer"]
