"""Tests for relation I/O (CSV / JSON) and tabular formatting."""

import pytest

from repro.domains import BOOLEAN, INTEGER, REAL, STRING
from repro.errors import SchemaError
from repro.relation import (
    Relation,
    format_relation,
    relation_from_csv,
    relation_from_json,
    relation_to_csv,
    relation_to_json,
)
from repro.schema import RelationSchema

SCHEMA = RelationSchema.of("t", k=INTEGER, flag=BOOLEAN, v=STRING, x=REAL)


@pytest.fixture
def relation():
    return Relation(
        SCHEMA,
        [(1, True, "a", 1.5), (1, True, "a", 1.5), (2, False, "b", -2.0)],
    )


class TestCsv:
    def test_round_trip(self, relation, tmp_path):
        path = tmp_path / "t.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv(path, name="t")
        assert loaded == relation
        assert loaded.schema.name == "t"

    def test_duplicates_as_repeated_rows(self, relation, tmp_path):
        path = tmp_path / "t.csv"
        relation_to_csv(relation, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4  # header + 3 rows (duplicate repeated)

    def test_typed_header(self, relation, tmp_path):
        path = tmp_path / "t.csv"
        relation_to_csv(relation, path)
        header = path.read_text().splitlines()[0]
        assert header == "k:integer,flag:boolean,v:string,x:real"

    def test_missing_domain_suffix_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SchemaError, match="domain"):
            relation_from_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            relation_from_csv(path)

    def test_anonymous_columns(self, tmp_path):
        path = tmp_path / "anon.csv"
        path.write_text("%1:integer,%2:string\n1,x\n")
        loaded = relation_from_csv(path)
        assert loaded.schema.names() == (None, None)
        assert loaded.multiplicity((1, "x")) == 1


class TestJson:
    def test_round_trip(self, relation, tmp_path):
        path = tmp_path / "t.json"
        relation_to_json(relation, path)
        loaded = relation_from_json(path)
        assert loaded == relation

    def test_pair_form_is_compact(self, relation, tmp_path):
        import json

        path = tmp_path / "t.json"
        relation_to_json(relation, path)
        document = json.loads(path.read_text())
        assert len(document["pairs"]) == 2  # distinct tuples, with counts
        assert sorted(count for _row, count in document["pairs"]) == [1, 2]


class TestFormat:
    def test_plain_table(self, relation):
        text = format_relation(relation)
        assert "k" in text and "flag" in text
        assert "(3 tuple(s), 2 distinct)" in text

    def test_multiplicity_view(self, relation):
        text = format_relation(relation, show_multiplicity=True)
        assert "| 2" in text  # the duplicated row's count column

    def test_truncation(self, relation):
        text = format_relation(relation, max_rows=1)
        assert "more row(s)" in text

    def test_anonymous_headers_positional(self):
        schema = RelationSchema.anonymous([INTEGER, STRING])
        relation = Relation(schema, [(1, "x")])
        text = format_relation(relation)
        assert "%1" in text and "%2" in text
