"""Tests for the observability subsystem (repro.obs).

Covers the tracer (nesting, disable semantics, sinks), the metrics
registry, the query log, the JSONL exporter, and the end-to-end
instrumentation of the query pipeline — parse, optimize, plan, execute —
plus the CLI meta-commands that surface it all.
"""

import io
import json

import pytest

from repro import obs
from repro.algebra import LiteralRelation
from repro.cli import Shell
from repro.domains import INTEGER
from repro.language import Insert, Session
from repro.obs import (
    NULL_SPAN,
    JsonLinesSink,
    MetricsRegistry,
    QueryLog,
    Tracer,
    export_jsonl,
    render_summary,
)
from repro.relation import Relation
from repro.schema import RelationSchema
from repro.sql import sql_to_algebra
from repro.workloads import tiny_beer_database


@pytest.fixture(autouse=True)
def _isolate_obs():
    """Every test starts and ends with observability fully off."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def beer_session():
    db = tiny_beer_database()
    return Session(db), db


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        [inner] = tracer.find("inner")
        [outer] = tracer.find("outer")
        assert inner.parent_index == outer.index
        assert inner.depth == outer.depth + 1
        assert outer.parent_index is None

    def test_completion_vs_start_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Children close first, so completion order is inner, outer...
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        # ...but ordered() restores start order.
        assert [s.name for s in tracer.ordered()] == ["outer", "inner"]

    def test_span_attributes(self):
        tracer = Tracer()
        with tracer.span("work", phase="parse") as span:
            span.set(tokens=42)
        [work] = tracer.find("work")
        record = work.to_record()
        assert record["event"] == "span"
        assert record["attrs"] == {"phase": "parse", "tokens": 42}
        assert record["seconds"] >= 0.0

    def test_exception_marks_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        [boom] = tracer.find("boom")
        assert boom.attrs["error"] == "ValueError"

    def test_max_spans_cap(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2

    def test_spans_stream_to_sink(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=JsonLinesSink(buffer))
        with tracer.span("a"):
            pass
        record = json.loads(buffer.getvalue())
        assert record["name"] == "a"

    def test_render_is_indented(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        lines = tracer.render().splitlines()
        # Two header lines, then the tree in start order.
        assert lines[2].startswith("outer")
        assert lines[3].startswith("  inner")


class TestDisableSemantics:
    def test_disabled_span_is_null_singleton(self):
        assert not obs.enabled()
        span = obs.span("anything", key="value")
        assert span is NULL_SPAN
        assert not span.recording
        with span as entered:
            entered.set(ignored=1)  # must be a silent no-op

    def test_disabled_metrics_are_noops(self):
        obs.add("some.counter", 5)
        obs.observe("some.histogram", 1.0)
        obs.gauge("some.gauge", 3)
        assert len(obs.metrics()) == 0
        assert obs.metrics().value("some.counter") is None

    def test_enable_then_disable(self):
        obs.enable()
        assert obs.enabled()
        with obs.span("live") as span:
            assert span.recording
        assert obs.tracer().find("live")
        obs.disable()
        assert not obs.enabled()
        assert obs.span("dead") is NULL_SPAN

    def test_metrics_survive_disable_until_reset(self):
        obs.enable()
        obs.add("kept.counter", 2)
        obs.disable()
        assert obs.metrics().value("kept.counter") == 2
        obs.reset()
        assert obs.metrics().value("kept.counter") is None


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.value("hits") == 5

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("rows", op="scan").inc(10)
        registry.counter("rows", op="join").inc(3)
        assert registry.value("rows", op="scan") == 10
        assert registry.value("rows", op="join") == 3
        assert registry.total("rows") == 13

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", a=1, b=2).inc()
        assert registry.value("x", b=2, a=1) == 1

    def test_gauge_keeps_last(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert registry.value("depth") == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("hits", kind="a").inc(2)
        records = registry.snapshot()
        assert all(r["event"] == "metric" for r in records)
        assert any(r["name"] == "hits" for r in records)
        assert "hits" in registry.render()

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.reset()
        assert registry.value("hits") is None
        assert len(registry) == 0


# ---------------------------------------------------------------------------
# Pipeline instrumentation, end to end
# ---------------------------------------------------------------------------


class TestPipelineTracing:
    def test_sql_query_produces_nested_spans(self, beer_session):
        session, db = beer_session
        obs.enable()
        expr = sql_to_algebra(
            "SELECT beer.name FROM beer, brewery "
            "WHERE beer.brewery = brewery.name",
            db.schema,
        )
        session.query(expr)
        names = [s.name for s in obs.tracer().ordered()]
        for expected in ("sql.parse", "sql.lex", "session.query",
                         "optimize", "plan", "execute"):
            assert expected in names, f"missing span {expected}"
        # parse happens before the session span; lex nests under parse;
        # plan and execute nest under session.query.
        tracer = obs.tracer()
        [lex] = tracer.find("sql.lex")
        [parse] = tracer.find("sql.parse")
        assert lex.parent_index == parse.index
        [query] = tracer.find("session.query")
        [plan] = tracer.find("plan")
        [execute] = tracer.find("execute")
        assert plan.depth > query.depth
        assert execute.depth > query.depth

    def test_execute_span_carries_operator_records(self, beer_session):
        session, _db = beer_session
        obs.enable()
        beer = session.relation("beer")
        brewery = session.relation("brewery")
        expr = beer.product(brewery).select("%2 = %4").project(["%1"])
        result = session.query(expr)
        [execute] = obs.tracer().find("execute")
        operators = execute.attrs["operators"]
        assert execute.attrs["rows"] == len(result)
        assert any(op["op"] == "hash-join" for op in operators)
        assert all("rows" in op and "pairs" in op for op in operators)

    def test_operator_and_rule_counters_nonzero(self, beer_session):
        session, _db = beer_session
        obs.enable()
        beer = session.relation("beer")
        brewery = session.relation("brewery")
        expr = beer.product(brewery).select("%2 = %4").project(["%1"])
        session.query(expr)
        registry = obs.metrics()
        assert registry.total("operator.rows") > 0
        assert registry.total("operator.pairs") > 0
        assert registry.total("optimizer.rule_hits") > 0
        assert registry.value("optimizer.runs") == 1
        assert registry.value("session.queries") == 1

    def test_transaction_spans_and_counters(self, beer_session):
        session, db = beer_session
        obs.enable()
        schema = db.schema.get("beer")
        row = next(iter(db["beer"]))
        session.run([Insert("beer", LiteralRelation(Relation(schema, [row])))])
        tracer = obs.tracer()
        [txn] = tracer.find("transaction")
        [commit] = tracer.find("commit")
        assert commit.parent_index == txn.index
        assert txn.attrs["outcome"] == "commit"
        assert obs.metrics().value("transactions.committed") == 1

    def test_xra_parse_spans(self):
        obs.enable()
        from repro.xra import parse_script

        db = tiny_beer_database()
        parse_script("? beer;", db.schema.get)
        names = [s.name for s in obs.tracer().ordered()]
        assert "xra.parse" in names
        assert "xra.lex" in names

    def test_parallel_extension_metrics(self):
        obs.enable()
        from repro.extensions.parallel import parallel_select

        schema = RelationSchema.of("r", a=INTEGER)
        relation = Relation(schema, [(i,) for i in range(100)])
        parallel_select(relation, lambda t: t[0] % 2 == 0, fragments=4)
        registry = obs.metrics()
        assert registry.value("parallel.ops", op="select") == 1
        assert registry.value("parallel.fragments", op="select") == 4
        [span] = obs.tracer().find("parallel.select")
        assert span.attrs["ideal_speedup"] >= 1.0

    def test_disabled_pipeline_records_nothing(self, beer_session):
        session, _db = beer_session
        beer = session.relation("beer")
        session.query(beer.select("%3 > 0"))
        assert obs.metrics().total("operator.rows") == 0


# ---------------------------------------------------------------------------
# Query log / slow queries
# ---------------------------------------------------------------------------


class TestQueryLog:
    def test_records_and_flags_slow(self):
        log = QueryLog(slow_threshold=0.5)
        log.record(kind="query", text="fast", seconds=0.1, plan="p",
                   rows=1, distinct=1, logical_time=0)
        log.record(kind="query", text="slow", seconds=0.9, plan="p",
                   rows=1, distinct=1, logical_time=1)
        assert log.recorded == 2
        assert log.slow_count == 1
        assert [r.text for r in log.slow()] == ["slow"]

    def test_no_threshold_means_nothing_slow(self):
        log = QueryLog()
        log.record(kind="query", text="q", seconds=99.0, plan="p",
                   rows=0, distinct=0, logical_time=0)
        assert log.slow_count == 0

    def test_capacity_ring(self):
        log = QueryLog(capacity=2)
        for i in range(5):
            log.record(kind="query", text=f"q{i}", seconds=0.0, plan="p",
                       rows=0, distinct=0, logical_time=i)
        assert log.recorded == 5
        assert [r.text for r in log.tail()] == ["q3", "q4"]

    def test_session_populates_log(self, beer_session):
        session, _db = beer_session
        session.query_log = QueryLog(slow_threshold=0.0)
        beer = session.relation("beer")
        result = session.query(beer.select("%3 > 4"))
        [record] = session.query_log.tail()
        assert record.kind == "query"
        assert record.rows == len(result)
        assert record.slow  # threshold 0 flags everything
        assert "beer" in record.plan

    def test_session_logs_transactions(self, beer_session):
        session, db = beer_session
        session.query_log = QueryLog()
        schema = db.schema.get("beer")
        row = next(iter(db["beer"]))
        session.run([Insert("beer", LiteralRelation(Relation(schema, [row])))])
        [record] = session.query_log.tail()
        assert record.kind == "commit"
        assert record.text.startswith("insert(beer")

    def test_render(self):
        log = QueryLog(slow_threshold=0.5)
        log.record(kind="query", text="q", seconds=1.0, plan="p",
                   rows=2, distinct=2, logical_time=0)
        text = log.render()
        assert "1 recorded" in text
        assert "1 slow" in text


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


class TestExport:
    def test_jsonl_file_roundtrip(self, tmp_path, beer_session):
        session, _db = beer_session
        path = tmp_path / "trace.jsonl"
        obs.enable(sink=JsonLinesSink(str(path)))
        beer = session.relation("beer")
        session.query(beer.select("%3 > 0"))
        obs.disable()  # closes the sink
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records
        names = {r["name"] for r in records}
        assert {"optimize", "plan", "execute", "session.query"} <= names
        assert all(r["event"] == "span" for r in records)

    def test_export_jsonl_batch(self, tmp_path):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.add("things", 3)
        path = tmp_path / "out.jsonl"
        export_jsonl(str(path), obs.tracer(), obs.metrics())
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        span_names = [r["name"] for r in records if r["event"] == "span"]
        assert span_names == ["outer", "inner"]  # start order
        metric_records = [r for r in records if r["event"] == "metric"]
        assert any(r["name"] == "things" for r in metric_records)

    def test_render_summary(self):
        obs.enable()
        with obs.span("s"):
            obs.add("hits")
        text = render_summary(obs.metrics(), obs.tracer())
        assert "hits" in text
        assert "1 span(s) recorded" in text


# ---------------------------------------------------------------------------
# CLI meta-commands
# ---------------------------------------------------------------------------


def make_shell():
    out, err = io.StringIO(), io.StringIO()
    shell = Shell(tiny_beer_database(), out=out, err=err)
    return shell, out, err


class TestCliCommands:
    def test_trace_on_off(self, tmp_path):
        shell, out, _err = make_shell()
        path = tmp_path / "t.jsonl"
        shell.handle_meta(f".trace on {path}")
        assert obs.enabled()
        shell.execute_xra("? beer;")
        shell.handle_meta(".trace off")
        assert not obs.enabled()
        assert "tracing on" in out.getvalue()
        assert path.exists() and path.read_text().strip()

    def test_metrics_command(self, tmp_path):
        shell, out, _err = make_shell()
        shell.handle_meta(f".trace on {tmp_path / 't.jsonl'}")
        shell.execute_xra("? sel[alcperc > 4.0](beer);")
        shell.handle_meta(".metrics")
        text = out.getvalue()
        assert "operator.rows" in text
        assert "optimizer" in text

    def test_metrics_hint_when_off(self):
        shell, out, _err = make_shell()
        shell.handle_meta(".metrics")
        assert "observability is off" in out.getvalue()

    def test_slowlog_threshold_and_listing(self):
        shell, out, _err = make_shell()
        shell.handle_meta(".slowlog 0")
        assert shell.query_log.slow_threshold == 0.0
        shell.execute_xra("? beer;")
        shell.handle_meta(".slowlog")
        text = out.getvalue()
        assert "threshold set to 0s" in text
        assert "1 slow" in text

    def test_slowlog_all(self):
        shell, out, _err = make_shell()
        shell.execute_xra("? beer;")
        shell.handle_meta(".slowlog all")
        assert "1 recorded" in out.getvalue()

    def test_slowlog_bad_argument(self):
        shell, _out, err = make_shell()
        shell.handle_meta(".slowlog nope")
        assert "usage" in err.getvalue()

    def test_help_mentions_obs_commands(self):
        shell, out, _err = make_shell()
        shell.handle_meta(".help")
        text = out.getvalue()
        for command in (".trace", ".metrics", ".slowlog"):
            assert command in text
