"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[script.stem for script in EXAMPLE_SCRIPTS]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should narrate their output"
