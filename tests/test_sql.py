"""Tests for the SQL front end: lexer, parser, translation, execution."""

import pytest

from repro.errors import SQLParseError, SQLTranslationError
from repro.language import Session
from repro.sql import (
    DeleteStatement,
    InsertStatement,
    SelectQuery,
    UpdateStatement,
    parse_sql,
    sql_to_algebra,
    sql_to_statement,
    tokenize_sql,
)
from repro.workloads import tiny_beer_database


@pytest.fixture
def db():
    return tiny_beer_database()


@pytest.fixture
def session(db):
    return Session(db)


class TestLexer:
    def test_keywords_lowered_names_preserved(self):
        tokens = tokenize_sql("SELECT Name FROM Beer")
        assert tokens[0] == ("keyword", "select", 0)
        assert tokens[1].text == "Name"

    def test_string_with_escape(self):
        tokens = tokenize_sql("'O''Hara'")
        assert tokens[0].kind == "string"

    def test_unknown_character(self):
        with pytest.raises(SQLParseError):
            tokenize_sql("SELECT #")


class TestParser:
    def test_select_shape(self):
        parsed = parse_sql(
            "SELECT country, AVG(alcperc) FROM beer, brewery "
            "WHERE beer.brewery = brewery.name GROUP BY country"
        )
        assert isinstance(parsed, SelectQuery)
        assert [table.name for table in parsed.tables] == ["beer", "brewery"]
        assert parsed.group_by == ["country"]
        assert parsed.items[1].aggregate.function == "AVG"

    def test_select_star(self):
        parsed = parse_sql("SELECT * FROM beer")
        assert parsed.star

    def test_distinct_flag(self):
        assert parse_sql("SELECT DISTINCT name FROM beer").distinct

    def test_count_star(self):
        parsed = parse_sql("SELECT COUNT(*) FROM beer")
        assert parsed.items[0].aggregate.argument is None

    def test_alias(self):
        parsed = parse_sql("SELECT alcperc * 2 AS double FROM beer")
        assert parsed.items[0].alias == "double"

    def test_insert_values(self):
        parsed = parse_sql("INSERT INTO beer VALUES ('X', 'Y', 5.0), ('Z', 'W', -1.0)")
        assert isinstance(parsed, InsertStatement)
        assert parsed.rows == [("X", "Y", 5.0), ("Z", "W", -1.0)]

    def test_insert_select(self):
        parsed = parse_sql("INSERT INTO archive SELECT * FROM beer")
        assert parsed.query is not None

    def test_delete(self):
        parsed = parse_sql("DELETE FROM beer WHERE alcperc > 6.0")
        assert isinstance(parsed, DeleteStatement)

    def test_update(self):
        parsed = parse_sql("UPDATE beer SET alcperc = alcperc * 1.1")
        assert isinstance(parsed, UpdateStatement)
        assert parsed.assignments[0][0] == "alcperc"

    def test_order_by_rejected_with_paper_reason(self):
        with pytest.raises(SQLParseError, match="no ordering"):
            parse_sql("SELECT name FROM beer ORDER BY name")

    def test_having_parsed(self):
        parsed = parse_sql(
            "SELECT country, COUNT(*) FROM brewery GROUP BY country "
            "HAVING COUNT(*) > 1"
        )
        assert parsed.having is not None

    def test_trailing_garbage(self):
        # ("extra" after a table would be an alias, so use a number.)
        with pytest.raises(SQLParseError):
            parse_sql("SELECT name FROM beer 42")

    def test_semicolon_allowed(self):
        parse_sql("SELECT name FROM beer;")

    def test_non_statement(self):
        with pytest.raises(SQLParseError):
            parse_sql("EXPLAIN SELECT 1")


class TestTranslation:
    def test_plain_select(self, db, session):
        expr = sql_to_algebra("SELECT name FROM beer WHERE alcperc > 5.0", db.schema)
        result = session.query(expr)
        assert result.multiplicity(("Bock",)) == 1
        assert result.multiplicity(("Tripel",)) == 1

    def test_select_star_identity(self, db, session):
        expr = sql_to_algebra("SELECT * FROM beer", db.schema)
        assert session.query(expr) == db["beer"]

    def test_projection_keeps_duplicates(self, db, session):
        expr = sql_to_algebra("SELECT name FROM beer", db.schema)
        assert session.query(expr).multiplicity(("Pils",)) == 2

    def test_distinct(self, db, session):
        expr = sql_to_algebra("SELECT DISTINCT name FROM beer", db.schema)
        assert session.query(expr).multiplicity(("Pils",)) == 1

    def test_computed_column_with_alias(self, db, session):
        expr = sql_to_algebra("SELECT alcperc * 2 AS d FROM beer", db.schema)
        assert expr.schema.attribute(1).name == "d"
        assert session.query(expr).multiplicity((9.0,)) == 2

    def test_qualified_disambiguation_required(self, db):
        with pytest.raises(SQLTranslationError, match="ambiguous"):
            sql_to_algebra("SELECT name FROM beer, brewery", db.schema)

    def test_qualified_names_work(self, db, session):
        expr = sql_to_algebra(
            "SELECT beer.name FROM beer, brewery "
            "WHERE beer.brewery = brewery.name AND brewery.country = 'Belgium'",
            db.schema,
        )
        result = session.query(expr)
        assert result.multiplicity(("Tripel",)) == 1

    def test_unknown_attribute(self, db):
        with pytest.raises(SQLTranslationError, match="unknown attribute"):
            sql_to_algebra("SELECT flavour FROM beer", db.schema)

    def test_unknown_table(self, db):
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            sql_to_algebra("SELECT x FROM nope", db.schema)

    def test_whole_relation_aggregate(self, db, session):
        expr = sql_to_algebra("SELECT COUNT(*) FROM beer", db.schema)
        assert list(session.query(expr).pairs()) == [((6,), 1)]

    def test_multiple_aggregates_via_join_composition(self, db, session):
        expr = sql_to_algebra(
            "SELECT country, COUNT(*), MAX(alcperc) FROM beer, brewery "
            "WHERE beer.brewery = brewery.name GROUP BY country",
            db.schema,
        )
        result = session.query(expr)
        assert result.multiplicity(("Netherlands", 3, 6.5)) == 1
        assert result.multiplicity(("Belgium", 2, 9.5)) == 1

    def test_multiple_whole_relation_aggregates(self, db, session):
        expr = sql_to_algebra(
            "SELECT MIN(alcperc), MAX(alcperc) FROM beer", db.schema
        )
        assert list(session.query(expr).pairs()) == [((4.2, 9.5), 1)]

    def test_select_item_order_respected(self, db, session):
        expr = sql_to_algebra(
            "SELECT AVG(alcperc), country FROM beer, brewery "
            "WHERE beer.brewery = brewery.name GROUP BY country",
            db.schema,
        )
        result = session.query(expr)
        assert result.multiplicity((8.25, "Belgium")) == 1

    def test_non_grouping_plain_item_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="not in GROUP BY"):
            sql_to_algebra(
                "SELECT city, AVG(alcperc) FROM beer, brewery "
                "WHERE beer.brewery = brewery.name GROUP BY country",
                db.schema,
            )

    def test_group_by_without_aggregate_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="DISTINCT"):
            sql_to_algebra(
                "SELECT country FROM brewery GROUP BY country", db.schema
            )

    def test_star_aggregate_non_count_rejected(self, db):
        with pytest.raises(SQLTranslationError):
            sql_to_algebra("SELECT SUM(*) FROM beer", db.schema)

    def test_computed_group_item_rejected(self, db):
        with pytest.raises(SQLTranslationError):
            sql_to_algebra(
                "SELECT country, alcperc + 1 , AVG(alcperc) FROM beer, brewery "
                "WHERE beer.brewery = brewery.name GROUP BY country",
                db.schema,
            )


class TestStatements:
    def test_insert_values(self, db, session):
        statement = sql_to_statement(
            "INSERT INTO beer VALUES ('New', 'Grolsch', 5.5), ('New', 'Grolsch', 5.5)",
            db.schema,
        )
        session.run([statement])
        assert db["beer"].multiplicity(("New", "Grolsch", 5.5)) == 2

    def test_insert_select(self, db, session):
        statement = sql_to_statement(
            "INSERT INTO beer SELECT * FROM beer", db.schema
        )
        session.run([statement])
        assert db["beer"].multiplicity(("Pils", "Guineken", 4.5)) == 2

    def test_delete_where(self, db, session):
        statement = sql_to_statement(
            "DELETE FROM beer WHERE brewery = 'Westmalle'", db.schema
        )
        session.run([statement])
        assert len(db["beer"]) == 4

    def test_delete_all(self, db, session):
        statement = sql_to_statement("DELETE FROM beer", db.schema)
        session.run([statement])
        assert not db["beer"]

    def test_update_set_unknown_attribute(self, db):
        with pytest.raises(SQLTranslationError, match="unknown attributes"):
            sql_to_statement("UPDATE beer SET colour = 'red'", db.schema)

    def test_update_without_where_touches_all(self, db, session):
        statement = sql_to_statement(
            "UPDATE beer SET alcperc = 0.0", db.schema
        )
        session.run([statement])
        assert all(row[2] == 0.0 for row in db["beer"].rows_sorted())

    def test_select_via_sql_to_statement_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="SELECT"):
            sql_to_statement("SELECT * FROM beer", db.schema)

    def test_dml_via_sql_to_algebra_rejected(self, db):
        with pytest.raises(SQLTranslationError):
            sql_to_algebra("DELETE FROM beer", db.schema)


class TestSemanticsAgainstAlgebra:
    def test_where_translates_to_selection(self, db, session):
        via_sql = session.query(
            sql_to_algebra("SELECT name FROM beer WHERE alcperc >= 7.0", db.schema)
        )
        via_algebra = session.query(
            session.relation("beer").select("alcperc >= 7.0").project(["name"])
        )
        # Extended projection vs basic projection: same multiset.
        assert via_sql == via_algebra

    def test_boolean_connectives(self, db, session):
        expr = sql_to_algebra(
            "SELECT name FROM beer WHERE NOT (alcperc < 5.0) AND brewery <> 'Guinness'",
            db.schema,
        )
        result = session.query(expr)
        assert sorted(result.support()) == [("Bock",), ("Dubbel",), ("Tripel",)]
