"""Property-style fuzzing of transaction atomicity (Definition 4.3).

Random statement sequences with a failure injected at a random position:
the database must afterwards be *exactly* the pre-state — no partial
effects, no logical-time advance, no stray temporaries.  Committed runs
must advance time by exactly one and drop all temporaries.
"""

import random

import pytest

from repro.algebra import LiteralRelation, RelationRef, Select
from repro.database import Database
from repro.errors import TransactionAbort
from repro.language import Assign, Delete, Insert, Query, Transaction, Update
from repro.relation import Relation
from repro.workloads.synthetic import int_schema

SCHEMA = int_schema(2, name="t")


def fresh_database(seed):
    rng = random.Random(seed)
    rows = [(rng.randrange(6), rng.randrange(6)) for _ in range(30)]
    db = Database()
    db.create_relation(SCHEMA, Relation(SCHEMA, rows))
    return db


def random_statement(rng, temp_counter):
    """One random statement against relation ``t``."""
    ref = RelationRef("t", SCHEMA)
    literal = LiteralRelation(
        Relation(SCHEMA, [(rng.randrange(6), rng.randrange(6))])
    )
    kind = rng.randrange(5)
    if kind == 0:
        return Insert("t", literal)
    if kind == 1:
        return Delete("t", Select(f"%1 = {rng.randrange(6)}", ref))
    if kind == 2:
        return Update(
            "t",
            Select(f"%2 = {rng.randrange(6)}", ref),
            ["%1 + 1", "%2"],
        )
    if kind == 3:
        return Assign(f"tmp{next(temp_counter)}", ref)
    return Query(ref)


class FailingStatement:
    def execute(self, _context):
        raise TransactionAbort("injected failure")


def counter():
    value = 0
    while True:
        yield value
        value += 1


@pytest.mark.parametrize("seed", range(25))
def test_aborted_transactions_leave_no_trace(seed):
    rng = random.Random(seed)
    db = fresh_database(seed)
    pre_state = db.snapshot()
    pre_time = db.logical_time

    temp_counter = counter()
    statements = [
        random_statement(rng, temp_counter) for _ in range(rng.randint(1, 6))
    ]
    position = rng.randint(0, len(statements))
    statements.insert(position, FailingStatement())

    result = Transaction(statements).run(db)
    assert not result.committed
    assert db.snapshot() == pre_state
    assert db.logical_time == pre_time
    assert db.names() == ["t"]  # no temporaries leaked


@pytest.mark.parametrize("seed", range(25))
def test_committed_transactions_are_single_transitions(seed):
    rng = random.Random(seed + 1000)
    db = fresh_database(seed)
    pre_time = db.logical_time

    temp_counter = counter()
    statements = [
        random_statement(rng, temp_counter) for _ in range(rng.randint(1, 6))
    ]
    result = Transaction(statements).run(db, record_intermediate_states=True)
    assert result.committed
    assert db.logical_time == pre_time + 1
    assert db.names() == ["t"]
    # One intermediate state per statement plus the initial one.
    assert len(result.intermediate_states) == len(statements) + 1


@pytest.mark.parametrize("seed", range(10))
def test_replaying_on_pre_state_is_deterministic(seed):
    """Same statements on equal states give equal post-states."""
    rng_a = random.Random(seed + 2000)
    db_a = fresh_database(seed)
    db_b = fresh_database(seed)

    temp_counter = counter()
    statements = [
        random_statement(rng_a, temp_counter) for _ in range(4)
    ]
    Transaction(statements).run(db_a)
    Transaction(statements).run(db_b)
    assert db_a.snapshot() == db_b.snapshot()
