"""Differential fuzzing: all engines and the optimizer must agree.

Random well-typed expression trees are generated over small integer
relations; for each tree we require

    evaluate(e) == execute(e) == evaluate(optimize(e))

which simultaneously exercises the reference evaluator, the physical
planner/operators, and every rewrite rule the optimizer fires.
"""

import pytest

from repro.engine import evaluate, execute
from repro.errors import EmptyAggregateError
from repro.optimizer import optimize
from repro.testing import ExpressionGenerator, random_environment

SEEDS = list(range(40))


@pytest.fixture(scope="module")
def env():
    return random_environment(tables=3, size=50, degree=2, value_space=5, seed=7)


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_and_optimizer_agree(env, seed):
    generator = ExpressionGenerator(env, seed=seed, max_depth=5)
    expr = generator.expression()
    try:
        reference = evaluate(expr, env)
    except EmptyAggregateError:
        # Partial aggregates on an empty bag are defined behaviour
        # (Definition 3.3); all engines must refuse alike.
        with pytest.raises(EmptyAggregateError):
            execute(expr, env)
        return
    physical = execute(expr, env)
    assert physical == reference, f"physical != reference for {expr!r}"
    optimized_reference = evaluate(optimize(expr), env)
    assert optimized_reference == reference, (
        f"optimizer changed semantics for {expr!r}"
    )
    optimized_physical = execute(optimize(expr), env)
    assert optimized_physical == reference


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_generated_trees_are_nontrivial(env, seed):
    generator = ExpressionGenerator(env, seed=seed, max_depth=5)
    # At least some generated trees must contain real operator structure.
    sizes = [generator.expression().node_count() for _ in range(10)]
    assert max(sizes) >= 3
