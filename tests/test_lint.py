"""Unit tests for :mod:`repro.lint` — rules, reports, sessions, plans.

The fixture corpus (:mod:`tests.test_lint_fixtures`) pins the
file-level surface; here each layer is tested directly: individual
rule firings and non-firings on built trees, report ordering and
rendering, the statement/script/SQL front ends, the Session and
interpreter gates, plan-consistency checking, and the zero-cost-off
property.
"""

from __future__ import annotations

import pytest

from repro.algebra import (
    Difference,
    GroupBy,
    Intersect,
    Join,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.algebra.extended import ExtendedProject
from repro.database import Database
from repro.domains import INTEGER, REAL, STRING
from repro.errors import LintError
from repro.expressions import parse_expression
from repro.language import Session
from repro.lint import (
    DUPLICATE_SENSITIVE,
    Severity,
    check_plan_consistency,
    checked_optimize,
    lint_expression,
    lint_script,
    rule_catalog,
)
from repro.schema import AttrList, DatabaseSchema, RelationSchema
from repro.xra import XRAInterpreter

BEER = RelationSchema.of("beer", name=STRING, brewery=STRING, alcperc=REAL)
NUMS = RelationSchema.of("nums", a=INTEGER, b=INTEGER)


def beer():
    return RelationRef("beer", BEER)


def nums():
    return RelationRef("nums", NUMS)


# -- individual rules ---------------------------------------------------


def test_xra010_aggregate_over_distinct():
    expr = GroupBy((2,), "AVG", 3, Unique(beer()))
    assert lint_expression(expr).codes() == ["XRA010"]


def test_xra010_quiet_for_insensitive_aggregates():
    expr = GroupBy((2,), "MIN", 3, Unique(beer()))
    assert lint_expression(expr).clean


def test_xra010_quiet_without_distinct():
    expr = GroupBy((2,), "AVG", 3, beer())
    assert lint_expression(expr).clean


def test_duplicate_sensitive_set_matches_paper():
    assert "AVG" in DUPLICATE_SENSITIVE
    assert "SUM" in DUPLICATE_SENSITIVE
    assert "CNTD" not in DUPLICATE_SENSITIVE
    assert "MIN" not in DUPLICATE_SENSITIVE


def test_xra011_redundant_distinct():
    assert lint_expression(Unique(Unique(beer()))).codes() == ["XRA011"]
    grouped = Unique(GroupBy((2,), "CNT", None, beer()))
    assert lint_expression(grouped).codes() == ["XRA011"]


def test_xra011_quiet_on_plain_relation():
    assert lint_expression(Unique(beer())).clean


def test_xra011_sees_through_select_and_setops():
    inner = Select(parse_expression("%1 > 0"), Unique(nums()))
    assert lint_expression(Unique(inner)).codes() == ["XRA011"]
    diff = Difference(Unique(nums()), nums())
    assert lint_expression(Unique(diff)).codes() == ["XRA011"]
    inter = Intersect(nums(), Unique(nums()))
    assert lint_expression(Unique(inter)).codes() == ["XRA011"]


def test_xra012_distinct_union():
    expr = Union(Unique(nums()), Unique(nums()))
    assert lint_expression(expr).codes() == ["XRA012"]


def test_xra012_quiet_when_wrapped_in_unique():
    expr = Unique(Union(Unique(nums()), Unique(nums())))
    codes = lint_expression(expr).codes()
    assert "XRA012" not in codes


def test_xra013_constant_true_selection():
    expr = Select(parse_expression("1 = 1"), nums())
    assert lint_expression(expr).codes() == ["XRA013"]
    reflexive = Select(parse_expression("%2 = %2"), nums())
    assert lint_expression(reflexive).codes() == ["XRA013"]


def test_xra014_constant_false_selection():
    expr = Select(parse_expression("1 = 2"), nums())
    assert lint_expression(expr).codes() == ["XRA014"]


def test_xra015_unconstrained_product():
    assert lint_expression(Product(nums(), nums())).codes() == ["XRA015"]


def test_xra015_quiet_with_spanning_predicate_above():
    expr = Select(parse_expression("%1 = %3"), Product(nums(), nums()))
    report = lint_expression(expr)
    assert "XRA015" not in report.codes()


def test_xra015_quiet_for_join():
    expr = Join(nums(), nums(), parse_expression("%1 = %3"))
    assert lint_expression(expr).clean


def test_xra016_dead_projected_columns():
    expr = Project(AttrList([1]), Project(AttrList([1, 2]), nums()))
    report = lint_expression(expr)
    assert report.codes() == ["XRA016"]
    (finding,) = report
    assert finding.severity is Severity.INFO


def test_xra017_constant_zero_division():
    expr = ExtendedProject(["%1 / 0"], nums())
    assert lint_expression(expr).codes() == ["XRA017"]
    in_select = Select(parse_expression("%1 / 0 > 1"), nums())
    assert lint_expression(in_select).codes() == ["XRA017"]


def test_clean_expression_has_clean_report():
    expr = Select(parse_expression("%1 > 2"), nums())
    report = lint_expression(expr)
    assert report.clean and report.ok
    assert report.render() == "lint: clean (no findings)"


# -- reports ------------------------------------------------------------


def test_report_orders_errors_first_and_serializes():
    expr = Union(Unique(nums()), Unique(nums()))
    report = lint_expression(expr)
    payload = report.to_dict()
    assert payload["counts"]["warning"] == 1
    assert payload["diagnostics"][0]["code"] == "XRA012"
    assert "Theorem 3.2" in payload["diagnostics"][0]["message"]
    assert "XRA012" in report.render()


def test_rule_catalog_is_complete_and_stable():
    catalog = rule_catalog()
    codes = [code for code, _, _, _ in catalog]
    assert codes == sorted(codes)
    for expected in (
        "XRA010",
        "XRA011",
        "XRA012",
        "XRA013",
        "XRA015",
        "XRA016",
        "XRA017",
    ):
        assert expected in codes


# -- script front end ---------------------------------------------------


def test_lint_script_positions_and_ddl_tracking():
    report = lint_script(
        "create t (a: int, b: int);\n"
        "x := proj[%1](t);\n"
        "? unique(unique(x));\n"
        "drop t;\n"
        "? t;\n"
    )
    assert report.codes() == ["XRA011", "XRA004"]
    redundant, unknown = report
    assert redundant.line == 3
    assert unknown.line == 5


def test_lint_script_is_pure_static_analysis():
    db = Database()
    interpreter = XRAInterpreter(db)
    interpreter.set_lint("warn")
    interpreter.run("create t (a: int);")
    # Linting a script that drops and recreates must not touch the db.
    lint_script("drop t;\n? t;", db.schema.get)
    assert "t" in db.names()


# -- session gates ------------------------------------------------------


def test_session_warn_mode_records_report():
    db = Database(DatabaseSchema([BEER]))
    session = Session(db, lint="warn")
    session.query(GroupBy((2,), "AVG", 3, Unique(beer())))
    assert session.last_lint is not None
    assert session.last_lint.codes() == ["XRA010"]


def test_session_strict_mode_blocks_error_statements():
    db = Database(DatabaseSchema([BEER]))
    session = Session(db, lint="strict")
    from repro.language.statements import Insert

    with pytest.raises(LintError) as caught:
        session.run([Insert("nosuch", beer())])
    assert "XRA004" in str(caught.value)
    assert caught.value.report.codes() == ["XRA004"]


def test_session_strict_mode_allows_warnings():
    db = Database(DatabaseSchema([BEER]))
    session = Session(db, lint="strict")
    result = session.query(Unique(Unique(beer())))
    assert result is not None
    assert session.last_lint.codes() == ["XRA011"]


def test_session_lint_mode_validation():
    db = Database()
    session = Session(db)
    assert session.lint_mode is None
    assert session.set_lint(True) == "warn"
    assert session.set_lint("strict") == "strict"
    assert session.set_lint("off") is None
    with pytest.raises(ValueError):
        session.set_lint("loud")


def test_interpreter_strict_mode_blocks_whole_script():
    db = Database()
    interpreter = XRAInterpreter(db)
    interpreter.set_lint("strict")
    interpreter.run("create t (a: int);")
    with pytest.raises(LintError):
        interpreter.run(
            "insert(t, tuples[(1)]);\n? sel[%9 = 1](t);"
        )
    # Strict linting refused *before* executing anything: no insert.
    assert len(db["t"]) == 0


# -- plan consistency ---------------------------------------------------


def test_plan_check_clean_on_real_optimizer():
    expr = Select(
        parse_expression("%1 = %3 and %2 > 1"), Product(nums(), nums())
    )
    from repro.optimizer import optimize

    report = check_plan_consistency(expr, optimize(expr))
    assert report.clean


def test_plan_check_catches_schema_divergence():
    source = Project(AttrList([1, 2]), nums())
    broken = Project(AttrList([1]), nums())
    report = check_plan_consistency(source, broken)
    assert "XRA020" in report.codes()
    assert not report.ok


def test_checked_optimize_raises_on_broken_optimizer():
    def drop_a_column(expr):
        return Project(AttrList([1]), expr)

    with pytest.raises(LintError) as caught:
        checked_optimize(nums(), drop_a_column)
    assert "XRA020" in str(caught.value)


def test_checked_optimize_passes_sound_optimizer():
    expr = Select(parse_expression("%1 > 0"), nums())
    optimized = checked_optimize(expr)
    assert optimized.schema.compatible_with(expr.schema)


# -- off is free --------------------------------------------------------


def test_lint_off_adds_no_per_query_work():
    """With lint off, the only cost is one attribute check per query."""
    db = Database(DatabaseSchema([BEER]))
    session = Session(db)
    assert session.lint_mode is None
    # The optimizer used for execution is the raw pipeline, unwrapped.
    assert session._exec_optimizer() is session._optimizer
    session.query(beer())
    assert session.last_lint is None


def test_lint_metrics_flow_through_obs():
    from repro import obs

    obs.enable()
    try:
        lint_expression(Unique(Unique(nums())))
        registry = obs.metrics()
        assert registry.total("lint.runs") >= 1
        assert registry.value("lint.findings", code="XRA011") >= 1
    finally:
        obs.disable()
