"""The physical engine against the reference evaluator.

Strategy: generate random relations and a zoo of expression shapes, then
assert ``execute(e) == evaluate(e)``.  Plus unit tests for each physical
operator's algorithm-specific behaviour (hash-join key handling,
residual predicates, stream consolidation).
"""

import pytest
from hypothesis import given

from repro.algebra import (
    GroupBy,
    Intersect,
    Join,
    LiteralRelation,
    Product,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.engine import evaluate, execute, plan
from repro.engine.iterators import (
    DistinctOp,
    FilterOp,
    HashJoinOp,
    LiteralOp,
    NestedLoopJoinOp,
    ScanOp,
    collect,
    consolidate,
)
from repro.relation import Relation
from repro.workloads import random_int_relation
from repro.workloads.synthetic import int_schema
from tests.conftest import int_relations


def lit(relation):
    return LiteralRelation(relation)


class TestAgreementWithReference:
    @given(int_relations, int_relations)
    def test_binary_operators(self, r1, r2):
        for expr in (
            Union(lit(r1), lit(r2)),
            lit(r1).difference(lit(r2)),
            Intersect(lit(r1), lit(r2)),
            Product(lit(r1), lit(r2)),
        ):
            assert execute(expr, {}) == evaluate(expr, {})

    @given(int_relations, int_relations)
    def test_equi_join(self, r1, r2):
        expr = Join(lit(r1), lit(r2), "%1 = %3")
        assert execute(expr, {}) == evaluate(expr, {})

    @given(int_relations, int_relations)
    def test_theta_join(self, r1, r2):
        expr = Join(lit(r1), lit(r2), "%1 < %4")
        assert execute(expr, {}) == evaluate(expr, {})

    @given(int_relations, int_relations)
    def test_mixed_join_with_residual(self, r1, r2):
        expr = Join(lit(r1), lit(r2), "%1 = %3 and %2 < %4")
        assert execute(expr, {}) == evaluate(expr, {})

    @given(int_relations)
    def test_unary_operators(self, r):
        for expr in (
            Select("%1 > 2", lit(r)),
            lit(r).project(["%2", "%1"]),
            lit(r).extended_project(["%1 + %2", "%1 * 2"]),
            Unique(lit(r)),
            GroupBy(["%1"], "CNT", None, lit(r)),
            GroupBy(["%1"], "SUM", "%2", lit(r)),
            GroupBy(None, "CNT", None, lit(r)),
        ):
            assert execute(expr, {}) == evaluate(expr, {})

    @given(int_relations, int_relations)
    def test_composed_pipeline(self, r1, r2):
        expr = (
            Select("%1 = %3", Product(lit(r1), lit(r2)))
            .project(["%2", "%4"])
            .distinct()
        )
        assert execute(expr, {}) == evaluate(expr, {})

    def test_larger_randomised_workload(self):
        left = random_int_relation(500, degree=2, value_space=40, seed=7, name="l")
        right = random_int_relation(300, degree=2, value_space=40, seed=8, name="r")
        env = {"l": left, "r": right}
        l_ref = RelationRef("l", left.schema.renamed("l"))
        r_ref = RelationRef("r", right.schema.renamed("r"))
        expr = (
            l_ref.join(r_ref, "%2 = %3")
            .select("%1 > 5")
            .project(["%1", "%4"])
            .group_by(["%1"], "CNT", None)
        )
        assert execute(expr, env) == evaluate(expr, env)


class TestPlannerStrategyChoice:
    def test_equi_join_becomes_hash_join(self):
        r = random_int_relation(5, name="x")
        expr = Join(lit(r), lit(r), "%1 = %3")
        assert isinstance(plan(expr), HashJoinOp)

    def test_theta_join_becomes_nested_loop(self):
        r = random_int_relation(5, name="x")
        expr = Join(lit(r), lit(r), "%1 < %3")
        assert isinstance(plan(expr), NestedLoopJoinOp)

    def test_select_over_product_fuses_into_join(self):
        r = random_int_relation(5, name="x")
        expr = Select("%1 = %3", Product(lit(r), lit(r)))
        assert isinstance(plan(expr), HashJoinOp)

    def test_constant_only_equality_is_pushed_into_keys(self):
        # '%4 = const' has an empty-reference side; the planner may fold it
        # into the hash key — results must still match the reference.
        r1 = random_int_relation(30, value_space=5, seed=1)
        r2 = random_int_relation(30, value_space=5, seed=2)
        expr = Join(lit(r1), lit(r2), "%1 = %3 and %4 = 2")
        assert execute(expr, {}) == evaluate(expr, {})

    def test_mixed_condition_keeps_residual(self):
        r = random_int_relation(5, name="x")
        expr = Join(lit(r), lit(r), "%1 = %3 and %2 < %4")
        node = plan(expr)
        assert isinstance(node, HashJoinOp)
        assert node.residual is not None

    def test_explain_renders_tree(self):
        r = random_int_relation(5, name="x")
        expr = Select("%1 > 1", Join(lit(r), lit(r), "%1 = %3"))
        text = plan(expr).explain()
        assert "hash-join" in text
        assert "filter" in text


class TestStreamMechanics:
    def test_consolidate_merges_repeated_rows(self):
        pairs = iter([((1,), 2), ((1,), 3), ((2,), 1)])
        assert consolidate(pairs) == {(1,): 5, (2,): 1}

    def test_filter_is_lazy(self):
        r = random_int_relation(10, degree=1, value_space=3, seed=3)
        op = FilterOp(lambda row: row[0] == 0, LiteralOp(r))
        stream = op.execute({})
        first = next(stream, None)
        if first is not None:
            assert first[0][0] == 0

    def test_distinct_emits_once(self):
        r = Relation(int_schema(1), [(1,), (1,), (2,)])
        result = collect(DistinctOp(LiteralOp(r)), {})
        assert result.multiplicity((1,)) == 1

    def test_scan_reads_environment(self):
        r = random_int_relation(5, name="t")
        op = ScanOp("t", r.schema)
        assert collect(op, {"t": r}) == r

    def test_operators_are_reexecutable(self):
        r = random_int_relation(20, value_space=4, seed=5)
        expr = Unique(Select("%1 > 0", lit(r)))
        node = plan(expr)
        first = collect(node, {})
        second = collect(node, {})
        assert first == second

    def test_hash_join_empty_build_side(self):
        r = random_int_relation(5)
        empty = Relation.empty(r.schema)
        expr = Join(lit(r), lit(empty), "%1 = %3")
        assert not execute(expr, {})

    def test_group_by_empty_input_whole_relation_cnt(self):
        empty = Relation.empty(int_schema(2))
        expr = GroupBy(None, "CNT", None, lit(empty))
        result = execute(expr, {})
        assert list(result.pairs()) == [((0,), 1)]

    def test_group_by_empty_input_partial_aggregate(self):
        from repro.errors import EmptyAggregateError

        empty = Relation.empty(int_schema(2))
        expr = GroupBy(None, "AVG", "%1", lit(empty))
        with pytest.raises(EmptyAggregateError):
            execute(expr, {})
