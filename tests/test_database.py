"""Tests for database instances, states, logical time, transitions."""

import pytest

from repro.database import Database, DatabaseTransition
from repro.domains import INTEGER, STRING
from repro.errors import (
    DuplicateRelationError,
    SchemaMismatchError,
    UnknownRelationError,
)
from repro.relation import Relation
from repro.schema import DatabaseSchema, RelationSchema

T = RelationSchema.of("t", k=INTEGER, v=STRING)


class TestDatabaseBasics:
    def test_create_empty_relation(self):
        db = Database()
        db.create_relation(T)
        assert not db["t"]
        assert "t" in db
        assert db.names() == ["t"]

    def test_create_with_contents(self):
        db = Database()
        db.create_relation(T, Relation(T, [(1, "a")]))
        assert db["t"].multiplicity((1, "a")) == 1

    def test_create_checks_schema(self):
        db = Database()
        other = RelationSchema.of("x", a=INTEGER)
        with pytest.raises(SchemaMismatchError):
            db.create_relation(T, Relation(other, [(1,)]))

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_relation(T)
        with pytest.raises(DuplicateRelationError):
            db.create_relation(T)

    def test_drop(self):
        db = Database()
        db.create_relation(T)
        db.drop_relation("t")
        assert "t" not in db
        with pytest.raises(UnknownRelationError):
            db.get("t")

    def test_prepopulated_schema(self):
        db = Database(DatabaseSchema([T]))
        assert not db["t"]

    def test_set_checks_schema(self):
        db = Database()
        db.create_relation(T)
        with pytest.raises(SchemaMismatchError):
            db.set("t", Relation(RelationSchema.of("x", a=INTEGER), [(1,)]))

    def test_as_env_is_read_only(self):
        db = Database()
        db.create_relation(T)
        env = db.as_env()
        assert "t" in env
        with pytest.raises(TypeError):
            env["t"] = None  # type: ignore[index]


class TestStatesAndTime:
    def test_initial_time_zero(self):
        assert Database().logical_time == 0

    def test_snapshot_restore(self):
        db = Database()
        db.create_relation(T, Relation(T, [(1, "a")]))
        state = db.snapshot()
        db.set("t", Relation(T, [(2, "b")]))
        db.restore(state)
        assert db["t"].multiplicity((1, "a")) == 1

    def test_install_advances_time_and_records(self):
        db = Database()
        db.create_relation(T)
        state = db.snapshot()
        state["t"] = Relation(T, [(1, "a")]).rename("t")
        transition = db.install(state)
        assert db.logical_time == 1
        assert db["t"].multiplicity((1, "a")) == 1
        assert transition.time_before == 0
        assert transition.time_after == 1
        assert transition.is_single_step
        assert db.transitions == [transition]

    def test_transition_changed_relations(self):
        before = {"t": Relation(T, [(1, "a")])}
        after = {"t": Relation(T, [(2, "b")]), "u": Relation(T, [(3, "c")])}
        transition = DatabaseTransition(before, after, 0, 1)
        assert transition.changed_relations() == ["t", "u"]

    def test_transition_requires_increasing_time(self):
        with pytest.raises(ValueError):
            DatabaseTransition({}, {}, 2, 2)
        with pytest.raises(ValueError):
            DatabaseTransition({}, {}, 3, 1)

    def test_multi_step_transition_flag(self):
        transition = DatabaseTransition({}, {}, 0, 5)
        assert not transition.is_single_step

    def test_repr(self):
        db = Database()
        db.create_relation(T, Relation(T, [(1, "a")]))
        assert "t[1]" in repr(db)
