"""Tests for the explain tooling."""

import pytest

from repro.algebra import Product, RelationRef, Select
from repro.engine import evaluate
from repro.tools import explain
from repro.workloads import tiny_beer_database


@pytest.fixture
def setup():
    db = tiny_beer_database()
    env = dict(db.as_env())
    beer = RelationRef("beer", env["beer"].schema)
    brewery = RelationRef("brewery", env["brewery"].schema)
    expr = Select(
        "%2 = %4 and %6 = 'Netherlands'", Product(beer, brewery)
    ).project(["%1"])
    return env, expr


class TestExplain:
    def test_report_sections(self, setup):
        env, expr = setup
        report = explain(expr, env)
        text = str(report)
        for section in ("== logical ==", "== rewrites ==", "== optimized ==",
                        "== estimates ==", "== physical =="):
            assert section in text

    def test_rules_fired_recorded(self, setup):
        env, expr = setup
        report = explain(expr, env)
        assert "split-select" in report.rules_fired

    def test_optimized_semantics_preserved(self, setup):
        env, expr = setup
        report = explain(expr, env)
        assert evaluate(report.optimized, env) == evaluate(expr, env)

    def test_cost_never_increases(self, setup):
        env, expr = setup
        report = explain(expr, env)
        assert report.estimated_cost_after() <= report.estimated_cost_before()

    def test_without_env_no_estimates(self, setup):
        _env, expr = setup
        report = explain(expr)
        assert report.estimated_cost_before() is None
        assert "== estimates ==" not in str(report)

    def test_with_histograms(self, setup):
        env, expr = setup
        report = explain(expr, env, with_histograms=True)
        assert report.catalog.histograms is not None

    def test_physical_plan_is_runnable(self, setup):
        env, expr = setup
        report = explain(expr, env)
        from repro.engine.iterators import collect

        assert collect(report.physical, env) == evaluate(expr, env)
