"""Detail tests for the execution context and pretty rendering."""

import pytest

from repro.algebra import GroupBy, RelationRef, render, render_tree
from repro.errors import UnknownRelationError
from repro.language import ExecutionContext
from repro.relation import Relation
from repro.workloads import tiny_beer_database
from repro.workloads.synthetic import int_schema


class TestExecutionContext:
    @pytest.fixture
    def context(self):
        db = tiny_beer_database()
        return ExecutionContext(db.snapshot())

    def test_environment_merges_temporaries(self, context):
        relation = Relation(int_schema(1), [(1,)])
        context.bind_temporary("tmp", relation)
        env = context.environment()
        assert "beer" in env and "tmp" in env

    def test_get_prefers_temporaries(self, context):
        # Temporaries and base names are disjoint, but resolution order
        # still checks temporaries first.
        relation = Relation(int_schema(1), [(1,)])
        context.bind_temporary("scratch", relation)
        assert context.get_relation("scratch") is not None

    def test_set_unknown_raises(self, context):
        with pytest.raises(UnknownRelationError):
            context.set_relation("ghost", Relation(int_schema(1), [(1,)]))

    def test_set_temporary_rebinding(self, context):
        first = Relation(int_schema(1), [(1,)])
        second = Relation(int_schema(1), [(2,)])
        context.bind_temporary("x", first)
        context.set_relation("x", second)
        assert context.get_relation("x").multiplicity((2,)) == 1

    def test_statistics_reflects_working_state(self, context):
        catalog = context.statistics()
        assert catalog.rows("beer") == 6.0

    def test_optimizer_hook_applied(self):
        db = tiny_beer_database()
        calls = []

        def spy(expr):
            calls.append(expr)
            return expr

        context = ExecutionContext(db.snapshot(), optimizer=spy)
        context.evaluate(RelationRef("beer", db["beer"].schema))
        assert len(calls) == 1

    def test_physical_flag_changes_engine_not_results(self):
        db = tiny_beer_database()
        expr = RelationRef("beer", db["beer"].schema).project(["name"])
        physical = ExecutionContext(db.snapshot(), use_physical_engine=True)
        reference = ExecutionContext(db.snapshot(), use_physical_engine=False)
        assert physical.evaluate(expr) == reference.evaluate(expr)


class TestRenderingCorners:
    def test_render_whole_relation_groupby_underscore_param(self):
        db = tiny_beer_database()
        expr = GroupBy(None, "CNT", None, RelationRef("beer", db["beer"].schema))
        text = render(expr)
        assert "Γ[(), CNT, _]" in text

    def test_render_tree_groupby_line(self):
        db = tiny_beer_database()
        expr = GroupBy(
            ["brewery"], "AVG", "alcperc", RelationRef("beer", db["beer"].schema)
        )
        assert "groupby [(%2), AVG, %3]" in render_tree(expr)

    def test_render_literal(self):
        from repro.algebra import LiteralRelation

        relation = Relation(int_schema(1), [(1,), (2,)])
        assert render(LiteralRelation(relation)) == "lit[2]"

    def test_render_difference_and_intersection_symbols(self):
        db = tiny_beer_database()
        beer = RelationRef("beer", db["beer"].schema)
        assert "−" in render(beer - beer)
        assert "∩" in render(beer & beer)
