"""Tests for the statistics catalog, cardinality estimator, and cost model."""

import pytest

from repro.algebra import (
    GroupBy,
    Join,
    Product,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.engine import (
    CostModel,
    StatisticsCatalog,
    TableStats,
    estimate_cardinality,
    estimate_cost,
)
from repro.relation import Relation
from repro.workloads import random_int_relation
from repro.workloads.synthetic import int_schema


@pytest.fixture
def env():
    return {
        "big": random_int_relation(1000, value_space=50, seed=1, name="big"),
        "small": random_int_relation(10, value_space=5, seed=2, name="small"),
    }


@pytest.fixture
def catalog(env):
    return StatisticsCatalog.from_env(env)


def ref(env, name):
    return RelationRef(name, env[name].schema.renamed(name))


class TestTableStats:
    def test_from_relation_exact(self):
        relation = Relation(int_schema(2), [(1, 1), (1, 2), (1, 2)])
        stats = TableStats.from_relation(relation)
        assert stats.row_count == 3
        assert stats.distinct_values == {1: 1, 2: 2}

    def test_catalog_rows(self, catalog):
        assert catalog.rows("big") == 1000.0
        assert catalog.rows("unknown") == 1000.0  # default

    def test_catalog_distinct(self, catalog):
        assert catalog.distinct("small", 1) is not None
        assert catalog.distinct("unknown", 1) is None


class TestCardinality:
    def test_base_relation(self, env, catalog):
        assert estimate_cardinality(ref(env, "big"), catalog) == 1000.0

    def test_union_adds(self, env, catalog):
        expr = Union(ref(env, "big"), ref(env, "big"))
        assert estimate_cardinality(expr, catalog) == 2000.0

    def test_product_multiplies(self, env, catalog):
        expr = Product(ref(env, "big"), ref(env, "small"))
        assert estimate_cardinality(expr, catalog) == 10000.0

    def test_projection_preserves_cardinality(self, env, catalog):
        """Bag semantics: |π(E)| = |E| exactly — no guessing needed."""
        expr = ref(env, "big").project(["%1"])
        assert estimate_cardinality(expr, catalog) == 1000.0

    def test_equality_selection_uses_distinct_counts(self, env, catalog):
        expr = Select("%1 = 3", ref(env, "big"))
        distinct = catalog.distinct("big", 1)
        assert estimate_cardinality(expr, catalog) == pytest.approx(
            1000.0 / distinct
        )

    def test_range_selection_default(self, env, catalog):
        expr = Select("%1 < 3", ref(env, "big"))
        assert estimate_cardinality(expr, catalog) == pytest.approx(1000.0 / 3)

    def test_conjunction_multiplies_selectivities(self, env, catalog):
        single = Select("%1 < 3", ref(env, "big"))
        double = Select("%1 < 3 and %2 < 3", ref(env, "big"))
        assert estimate_cardinality(double, catalog) < estimate_cardinality(
            single, catalog
        )

    def test_join_below_product(self, env, catalog):
        join = Join(ref(env, "big"), ref(env, "small"), "%1 = %3")
        product = Product(ref(env, "big"), ref(env, "small"))
        assert estimate_cardinality(join, catalog) < estimate_cardinality(
            product, catalog
        )

    def test_unique_shrinks(self, env, catalog):
        expr = Unique(ref(env, "big"))
        assert estimate_cardinality(expr, catalog) < 1000.0

    def test_groupby_uses_distinct_when_known(self, env, catalog):
        expr = GroupBy(["%1"], "CNT", None, ref(env, "small"))
        distinct = catalog.distinct("small", 1)
        assert estimate_cardinality(expr, catalog) == float(distinct)

    def test_groupby_empty_alpha_is_one(self, env, catalog):
        expr = GroupBy(None, "CNT", None, ref(env, "big"))
        assert estimate_cardinality(expr, catalog) == 1.0

    def test_constant_conditions(self, env, catalog):
        assert estimate_cardinality(
            Select("true", ref(env, "big")), catalog
        ) == 1000.0
        assert estimate_cardinality(
            Select("false", ref(env, "big")), catalog
        ) == 0.0


class TestCost:
    def test_pushdown_is_cheaper(self, env, catalog):
        unpushed = Select("%1 = 3", Product(ref(env, "big"), ref(env, "small")))
        pushed = Product(
            Select("%1 = 3", ref(env, "big")), ref(env, "small")
        )
        assert estimate_cost(pushed, catalog) < estimate_cost(unpushed, catalog)

    def test_hash_join_cheaper_than_theta(self, env, catalog):
        equi = Join(ref(env, "big"), ref(env, "small"), "%1 = %3")
        theta = Join(ref(env, "big"), ref(env, "small"), "%1 < %3")
        assert estimate_cost(equi, catalog) < estimate_cost(theta, catalog)

    def test_small_build_side_reflected(self, env, catalog):
        model = CostModel(hash_build_weight=10.0)
        small_build = Join(ref(env, "big"), ref(env, "small"), "%1 = %3")
        big_build = Join(ref(env, "small"), ref(env, "big"), "%1 = %3")
        assert estimate_cost(small_build, catalog, model) < estimate_cost(
            big_build, catalog, model
        )

    def test_cost_monotone_in_tree_size(self, env, catalog):
        base = ref(env, "big")
        bigger = Unique(Select("%1 > 1", base))
        assert estimate_cost(bigger, catalog) > estimate_cost(base, catalog)
