"""Unit tests for tuple operations (Definition 2.4)."""

import pytest

from repro.domains import INTEGER, REAL, STRING
from repro.errors import AttributeResolutionError, DomainValueError
from repro.schema import RelationSchema
from repro.tuples import (
    attr_value,
    concat_tuples,
    degree,
    make_row,
    project_tuple,
    validate_tuple,
)


class TestAccess:
    def test_attr_value_is_one_based(self):
        # r.i in the paper's notation
        row = ("Pils", "Grolsch", 4.5)
        assert attr_value(row, 1) == "Pils"
        assert attr_value(row, 3) == 4.5

    def test_attr_value_out_of_range(self):
        with pytest.raises(AttributeResolutionError):
            attr_value(("a",), 2)
        with pytest.raises(AttributeResolutionError):
            attr_value(("a",), 0)

    def test_degree_is_hash_r(self):
        assert degree(("a", "b", "c")) == 3
        assert degree(()) == 0


class TestProjection:
    def test_alpha_projection(self):
        row = ("Pils", "Grolsch", 4.5)
        assert project_tuple(row, [3, 1]) == (4.5, "Pils")

    def test_projection_repetition_allowed(self):
        # The definition only demands 1 <= i_j <= #r.
        assert project_tuple(("x", "y"), [1, 1, 2]) == ("x", "x", "y")

    def test_projection_out_of_range(self):
        with pytest.raises(AttributeResolutionError):
            project_tuple(("x",), [2])


class TestConcatenation:
    def test_oplus(self):
        assert concat_tuples(("a", 1), (2.5,)) == ("a", 1, 2.5)

    def test_oplus_with_empty(self):
        assert concat_tuples((), ("x",)) == ("x",)

    def test_order_matters(self):
        assert concat_tuples(("a",), ("b",)) != concat_tuples(("b",), ("a",))


class TestValidation:
    def setup_method(self):
        self.schema = RelationSchema.of("t", a=INTEGER, b=REAL, c=STRING)

    def test_normalises_values(self):
        row = validate_tuple([1, 2, "x"], self.schema)
        assert row == (1, 2.0, "x")
        assert type(row[1]) is float

    def test_wrong_degree(self):
        with pytest.raises(DomainValueError):
            validate_tuple([1, 2.0], self.schema)

    def test_wrong_domain(self):
        with pytest.raises(DomainValueError):
            validate_tuple(["x", 2.0, "y"], self.schema)

    def test_make_row(self):
        assert make_row(iter([1, 2])) == (1, 2)

    def test_equality_after_normalisation(self):
        # Definition 2.4 tuple equality: corresponding attributes equal.
        first = validate_tuple([1, 2, "x"], self.schema)
        second = validate_tuple([1, 2.0, "x"], self.schema)
        assert first == second
