"""Unit tests for the multiset container (Definitions 2.2-2.4, 3.1)."""

import pytest

from repro.multiset import (
    Multiset,
    difference,
    distinct,
    intersection,
    intersection_all,
    is_submultiset,
    max_union,
    multiset_equal,
    scale,
    union,
    union_all,
)


class TestConstruction:
    def test_from_iterable_counts_duplicates(self):
        bag = Multiset(["a", "b", "a", "a"])
        assert bag("a") == 3
        assert bag("b") == 1
        assert bag("c") == 0

    def test_from_mapping(self):
        bag = Multiset({"x": 2, "y": 1})
        assert bag("x") == 2
        assert len(bag) == 3

    def test_mapping_zero_counts_dropped(self):
        bag = Multiset({"x": 0, "y": 1})
        assert "x" not in bag
        assert bag.support_size == 1

    def test_mapping_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Multiset({"x": -1})

    def test_non_int_count_rejected(self):
        with pytest.raises(TypeError):
            Multiset({"x": 1.5})

    def test_bool_count_rejected(self):
        with pytest.raises(TypeError):
            Multiset({"x": True})

    def test_from_pairs(self):
        bag = Multiset.from_pairs([("a", 2), ("b", 1), ("a", 1)])
        assert bag("a") == 3

    def test_from_pairs_zero_dropped(self):
        bag = Multiset.from_pairs([("a", 0)])
        assert not bag

    def test_empty(self):
        bag = Multiset.empty()
        assert len(bag) == 0
        assert not bag

    def test_copy_constructor(self):
        original = Multiset(["a", "a"])
        copied = Multiset(original)
        assert copied == original
        copied.add("b")
        assert "b" not in original


class TestAccess:
    def test_call_is_multiplicity(self):
        bag = Multiset(["x", "x"])
        assert bag("x") == bag.multiplicity("x") == 2

    def test_membership_definition_2_4(self):
        # r in R  <=>  R(r) > 0
        bag = Multiset(["x"])
        assert "x" in bag
        assert "y" not in bag

    def test_len_counts_duplicates(self):
        assert len(Multiset(["a", "a", "b"])) == 3

    def test_support_size(self):
        assert Multiset(["a", "a", "b"]).support_size == 2

    def test_elements_repeats(self):
        bag = Multiset({"a": 2, "b": 1})
        assert sorted(bag.elements()) == ["a", "a", "b"]

    def test_pairs_notation(self):
        bag = Multiset({"a": 2})
        assert list(bag.pairs()) == [("a", 2)]

    def test_support_frozenset(self):
        assert Multiset(["a", "a", "b"]).support() == frozenset({"a", "b"})

    def test_iter_distinct(self):
        assert sorted(iter(Multiset({"a": 5, "b": 1}))) == ["a", "b"]


class TestComparisons:
    def test_equality_by_multiplicity(self):
        assert Multiset(["a", "a"]) == Multiset({"a": 2})
        assert Multiset(["a"]) != Multiset({"a": 2})

    def test_hash_consistency(self):
        assert hash(Multiset(["a", "a"])) == hash(Multiset({"a": 2}))

    def test_submultiset(self):
        small = Multiset({"a": 1, "b": 1})
        large = Multiset({"a": 2, "b": 1, "c": 1})
        assert small.issubmultiset(large)
        assert not large.issubmultiset(small)

    def test_submultiset_is_multiplicity_wise(self):
        # {a:2} is NOT a sub-multiset of {a:1, b:5} despite smaller support
        assert not Multiset({"a": 2}).issubmultiset(Multiset({"a": 1, "b": 5}))

    def test_operators_le_lt(self):
        small = Multiset({"a": 1})
        large = Multiset({"a": 2})
        assert small <= large
        assert small < large
        assert large >= small
        assert not (large < large)

    def test_empty_is_submultiset_of_everything(self):
        assert Multiset.empty() <= Multiset({"x": 1})
        assert Multiset.empty() <= Multiset.empty()


class TestBasicAlgebra:
    def test_union_adds_multiplicities(self):
        result = Multiset({"a": 2}).union(Multiset({"a": 3, "b": 1}))
        assert result("a") == 5
        assert result("b") == 1

    def test_difference_is_monus(self):
        result = Multiset({"a": 2, "b": 1}).difference(Multiset({"a": 5, "b": 1}))
        assert result("a") == 0  # floored at zero, not negative
        assert result("b") == 0
        assert not result

    def test_difference_partial_removal(self):
        result = Multiset({"a": 5}).difference(Multiset({"a": 2}))
        assert result("a") == 3

    def test_intersection_is_min(self):
        result = Multiset({"a": 3, "b": 1}).intersection(Multiset({"a": 2, "c": 1}))
        assert result("a") == 2
        assert "b" not in result
        assert "c" not in result

    def test_operator_sugar(self):
        a = Multiset({"x": 2})
        b = Multiset({"x": 1})
        assert (a + b)("x") == 3
        assert (a - b)("x") == 1
        assert (a & b)("x") == 1
        assert (a | b)("x") == 2  # max-union

    def test_max_union(self):
        result = Multiset({"a": 2, "b": 1}).max_union(Multiset({"a": 1, "c": 4}))
        assert result("a") == 2
        assert result("b") == 1
        assert result("c") == 4

    def test_distinct(self):
        result = Multiset({"a": 5, "b": 1}).distinct()
        assert result("a") == 1
        assert result("b") == 1
        assert result.support_size == 2

    def test_scale(self):
        result = Multiset({"a": 2}).scale(3)
        assert result("a") == 6

    def test_scale_zero_gives_empty(self):
        assert not Multiset({"a": 2}).scale(0)

    def test_scale_negative_rejected(self):
        with pytest.raises(ValueError):
            Multiset({"a": 1}).scale(-1)

    def test_scalar_mul_sugar(self):
        assert (2 * Multiset({"a": 1}))("a") == 2
        assert (Multiset({"a": 1}) * 2)("a") == 2


class TestHigherOrder:
    def test_filter_keeps_multiplicities(self):
        bag = Multiset({1: 3, 2: 1, 3: 2})
        result = bag.filter(lambda value: value % 2 == 1)
        assert result(1) == 3
        assert result(3) == 2
        assert 2 not in result

    def test_map_sums_multiplicities(self):
        # The core of bag projection: non-injective map adds counts.
        bag = Multiset({(1, "a"): 2, (1, "b"): 3, (2, "a"): 1})
        result = bag.map(lambda pair: pair[0])
        assert result(1) == 5
        assert result(2) == 1

    def test_product_multiplies_multiplicities(self):
        left = Multiset({"a": 2})
        right = Multiset({"x": 3})
        result = left.product(right, lambda x, y: (x, y))
        assert result(("a", "x")) == 6

    def test_product_with_empty_is_empty(self):
        assert not Multiset({"a": 1}).product(Multiset.empty(), lambda x, y: (x, y))


class TestMutation:
    def test_add(self):
        bag = Multiset()
        bag.add("x")
        bag.add("x", 2)
        assert bag("x") == 3
        assert len(bag) == 3

    def test_add_zero_noop(self):
        bag = Multiset()
        bag.add("x", 0)
        assert "x" not in bag

    def test_discard_partial(self):
        bag = Multiset({"x": 3})
        removed = bag.discard("x", 2)
        assert removed == 2
        assert bag("x") == 1

    def test_discard_more_than_present(self):
        bag = Multiset({"x": 1})
        removed = bag.discard("x", 5)
        assert removed == 1
        assert "x" not in bag
        assert len(bag) == 0

    def test_discard_absent(self):
        bag = Multiset()
        assert bag.discard("x") == 0

    def test_copy_is_independent(self):
        bag = Multiset({"x": 1})
        other = bag.copy()
        other.add("x")
        assert bag("x") == 1


class TestFreeFunctions:
    def test_union_all(self):
        bags = [Multiset({"a": 1}), Multiset({"a": 2}), Multiset({"b": 1})]
        result = union_all(bags)
        assert result("a") == 3
        assert result("b") == 1

    def test_union_all_empty_input(self):
        assert union_all([]) == Multiset.empty()

    def test_intersection_all(self):
        bags = [Multiset({"a": 3, "b": 1}), Multiset({"a": 2}), Multiset({"a": 1})]
        assert intersection_all(bags) == Multiset({"a": 1})

    def test_intersection_all_empty_input_rejected(self):
        with pytest.raises(ValueError):
            intersection_all([])

    def test_free_functions_match_methods(self):
        a = Multiset({"x": 2, "y": 1})
        b = Multiset({"x": 1, "z": 3})
        assert union(a, b) == a.union(b)
        assert difference(a, b) == a.difference(b)
        assert intersection(a, b) == a.intersection(b)
        assert max_union(a, b) == a.max_union(b)
        assert distinct(a) == a.distinct()
        assert scale(a, 2) == a.scale(2)
        assert is_submultiset(a, a.union(b))
        assert multiset_equal(a, a.copy())


class TestRepr:
    def test_empty_repr(self):
        assert repr(Multiset()) == "Multiset()"

    def test_repr_shows_counts(self):
        assert "2" in repr(Multiset({"a": 2}))
