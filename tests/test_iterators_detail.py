"""Detail tests for physical operators: labels, explain, edge behaviour."""

import pytest

from repro.aggregates import CNT, SUM
from repro.engine.iterators import (
    DifferenceOp,
    DistinctOp,
    FilterOp,
    GroupByOp,
    HashJoinOp,
    IntersectOp,
    LiteralOp,
    MapOp,
    NestedLoopJoinOp,
    ProductOp,
    ProjectOp,
    ScanOp,
    UnionOp,
    collect,
)
from repro.relation import Relation
from repro.workloads import random_int_relation
from repro.workloads.synthetic import int_schema


@pytest.fixture
def relation():
    return Relation(int_schema(2), [(1, 10), (1, 10), (2, 20), (3, 30)])


def literal(relation):
    return LiteralOp(relation)


class TestLabels:
    def test_scan_label_includes_name(self):
        op = ScanOp("beer", int_schema(2))
        assert op.label() == "scan beer"

    def test_literal_label_includes_size(self, relation):
        assert literal(relation).label() == "literal[4]"

    def test_filter_label_with_description(self, relation):
        op = FilterOp(lambda row: True, literal(relation), describe="x > 1")
        assert "x > 1" in op.label()

    def test_project_label(self, relation):
        op = ProjectOp([2, 1], int_schema(2), literal(relation))
        assert op.label() == "project [%2, %1]"

    def test_hash_join_residual_flag(self, relation):
        plain = HashJoinOp(
            literal(relation),
            literal(relation),
            lambda row: row[0],
            lambda row: row[0],
            int_schema(4),
        )
        residual = HashJoinOp(
            literal(relation),
            literal(relation),
            lambda row: row[0],
            lambda row: row[0],
            int_schema(4),
            residual=lambda row: True,
        )
        assert plain.label() == "hash-join"
        assert residual.label() == "hash-join +residual"

    def test_groupby_label(self, relation):
        op = GroupByOp([1], SUM, 2, int_schema(2), literal(relation))
        assert "SUM" in op.label()

    def test_explain_indents_children(self, relation):
        op = UnionOp(literal(relation), literal(relation))
        lines = op.explain().splitlines()
        assert lines[0] == "union"
        assert lines[1].startswith("  ")


class TestOperatorEdges:
    def test_union_streams_both_sides(self, relation):
        result = collect(UnionOp(literal(relation), literal(relation)), {})
        assert result.multiplicity((1, 10)) == 4

    def test_difference_consolidates_duplicate_stream_entries(self, relation):
        # Left side streams the same tuple in two pairs (via a union);
        # monus must apply to the TOTAL, not per pair.
        left = UnionOp(literal(relation), literal(relation))
        right = literal(Relation(int_schema(2), [(1, 10), (1, 10), (1, 10)]))
        result = collect(DifferenceOp(left, right), {})
        assert result.multiplicity((1, 10)) == 1  # 4 - 3

    def test_intersect_on_streams(self, relation):
        other = Relation(int_schema(2), [(1, 10), (9, 9)])
        result = collect(IntersectOp(literal(relation), literal(other)), {})
        assert result.multiplicity((1, 10)) == 1
        assert (9, 9) not in result

    def test_product_multiplies_counts(self):
        left = Relation(int_schema(1), {(1,): 2})
        right = Relation(int_schema(1), {(7,): 3})
        op = ProductOp(literal(left), literal(right), int_schema(2))
        result = collect(op, {})
        assert result.multiplicity((1, 7)) == 6

    def test_nested_loop_join_predicate(self, relation):
        op = NestedLoopJoinOp(
            literal(relation),
            literal(relation),
            lambda row: row[0] < row[2],
            int_schema(4),
        )
        result = collect(op, {})
        assert all(row[0] < row[2] for row in result.support())

    def test_map_op_applies_functions(self, relation):
        op = MapOp(
            [lambda row: row[0] + row[1]], int_schema(1), literal(relation)
        )
        result = collect(op, {})
        assert result.multiplicity((11,)) == 2

    def test_distinct_on_stream_with_repeats(self, relation):
        op = DistinctOp(UnionOp(literal(relation), literal(relation)))
        result = collect(op, {})
        assert all(count == 1 for _row, count in result.pairs())

    def test_groupby_cnt_without_param(self, relation):
        op = GroupByOp([1], CNT, None, int_schema(2), literal(relation))
        result = collect(op, {})
        assert result.multiplicity((1, 2)) == 1

    def test_hash_join_key_mismatch_yields_nothing(self):
        left = Relation(int_schema(1), [(1,)])
        right = Relation(int_schema(1), [(2,)])
        op = HashJoinOp(
            literal(left),
            literal(right),
            lambda row: row[0],
            lambda row: row[0],
            int_schema(2),
        )
        assert not collect(op, {})

    def test_scan_uses_current_environment(self):
        first = random_int_relation(5, name="t", seed=1)
        second = random_int_relation(7, name="t", seed=2)
        op = ScanOp("t", first.schema)
        assert len(collect(op, {"t": first})) == 5
        assert len(collect(op, {"t": second})) == 7
