"""Unit tests for relation and database schemas (Definitions 2.2 / 2.5)."""

import pytest

from repro.domains import INTEGER, REAL, STRING
from repro.errors import (
    AttributeResolutionError,
    DuplicateAttributeError,
    DuplicateRelationError,
    UnknownRelationError,
)
from repro.schema import Attribute, DatabaseSchema, RelationSchema


class TestAttribute:
    def test_value_object(self):
        assert Attribute("name", STRING) == Attribute("name", STRING)
        assert Attribute("name", STRING) != Attribute("name", INTEGER)
        assert Attribute("name", STRING) != Attribute("other", STRING)

    def test_anonymous(self):
        attribute = Attribute("x", INTEGER).anonymous()
        assert attribute.name is None
        assert attribute.domain == INTEGER

    def test_renamed(self):
        assert Attribute("x", INTEGER).renamed("y").name == "y"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("  ", INTEGER)

    def test_non_domain_rejected(self):
        with pytest.raises(TypeError):
            Attribute("x", int)  # type: ignore[arg-type]

    def test_hashable(self):
        assert len({Attribute("x", INTEGER), Attribute("x", INTEGER)}) == 1


class TestRelationSchemaConstruction:
    def test_of_keyword_style(self):
        schema = RelationSchema.of("beer", name=STRING, alcperc=REAL)
        assert schema.name == "beer"
        assert schema.degree == 2
        assert schema.attribute(1).name == "name"
        assert schema.attribute(2).domain == REAL

    def test_of_allows_attribute_called_name(self):
        # The positional-only first parameter must not clash with **attrs.
        schema = RelationSchema.of("t", name=STRING)
        assert schema.attribute(1).name == "name"

    def test_anonymous(self):
        schema = RelationSchema.anonymous([INTEGER, STRING])
        assert schema.name is None
        assert schema.names() == (None, None)

    def test_tuple_form(self):
        schema = RelationSchema("t", [("a", INTEGER), (None, REAL)])
        assert schema.attribute(2).name is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("t", [])

    def test_strict_accepts_proper(self):
        schema = RelationSchema.of("t", a=INTEGER, b=REAL)
        assert schema.strict() is schema

    def test_strict_rejects_unnamed(self):
        with pytest.raises(DuplicateAttributeError):
            RelationSchema("t", [(None, INTEGER)]).strict()

    def test_strict_rejects_duplicates(self):
        schema = RelationSchema("t", [("a", INTEGER), ("a", REAL)])
        with pytest.raises(DuplicateAttributeError):
            schema.strict()


class TestResolution:
    def setup_method(self):
        self.schema = RelationSchema.of("beer", name=STRING, brewery=STRING, alcperc=REAL)

    def test_by_int(self):
        assert self.schema.resolve(2) == 2

    def test_by_percent_text(self):
        assert self.schema.resolve("%3") == 3

    def test_by_name(self):
        assert self.schema.resolve("brewery") == 2

    def test_by_qualified_name(self):
        assert self.schema.resolve("beer.alcperc") == 3

    def test_wrong_qualifier_rejected(self):
        with pytest.raises(AttributeResolutionError):
            self.schema.resolve("brewery.name")

    def test_out_of_range(self):
        with pytest.raises(AttributeResolutionError):
            self.schema.resolve(4)
        with pytest.raises(AttributeResolutionError):
            self.schema.resolve(0)

    def test_unknown_name(self):
        with pytest.raises(AttributeResolutionError):
            self.schema.resolve("country")

    def test_malformed_percent(self):
        with pytest.raises(AttributeResolutionError):
            self.schema.resolve("%x")

    def test_bool_not_an_index(self):
        with pytest.raises(AttributeResolutionError):
            self.schema.resolve(True)  # type: ignore[arg-type]

    def test_resolve_all(self):
        assert self.schema.resolve_all(["name", "%3"]) == (1, 3)

    def test_ambiguous_name_unresolvable(self):
        schema = RelationSchema("t", [("a", INTEGER), ("a", REAL)])
        with pytest.raises(AttributeResolutionError):
            schema.resolve("a")
        # Positional addressing still works — the paper's whole point.
        assert schema.resolve(2) == 2


class TestSchemaOperators:
    def test_concat_is_tuple_oplus(self):
        left = RelationSchema.of("l", a=INTEGER)
        right = RelationSchema.of("r", b=REAL)
        combined = left.concat(right)
        assert combined.degree == 2
        assert combined.name is None
        assert combined.names() == ("a", "b")

    def test_concat_with_clash_keeps_positional(self):
        left = RelationSchema.of("l", a=INTEGER)
        right = RelationSchema.of("r", a=REAL)
        combined = left.concat(right)
        with pytest.raises(AttributeResolutionError):
            combined.resolve("a")
        assert combined.resolve(2) == 2

    def test_project(self):
        schema = RelationSchema.of("t", a=INTEGER, b=REAL, c=STRING)
        projected = schema.project([3, 1])
        assert projected.names() == ("c", "a")
        assert projected.name is None

    def test_project_allows_repetition(self):
        schema = RelationSchema.of("t", a=INTEGER)
        assert schema.project([1, 1]).degree == 2

    def test_renamed(self):
        schema = RelationSchema.of("t", a=INTEGER).renamed("u")
        assert schema.name == "u"

    def test_with_attribute_names(self):
        schema = RelationSchema.of("t", a=INTEGER, b=REAL)
        renamed = schema.with_attribute_names(["x", None])
        assert renamed.names() == ("x", None)

    def test_with_attribute_names_wrong_arity(self):
        with pytest.raises(ValueError):
            RelationSchema.of("t", a=INTEGER).with_attribute_names(["x", "y"])


class TestCompatibility:
    def test_compatible_ignores_names(self):
        left = RelationSchema.of("l", a=INTEGER, b=REAL)
        right = RelationSchema.of("r", x=INTEGER, y=REAL)
        assert left.compatible_with(right)

    def test_incompatible_domains(self):
        left = RelationSchema.of("l", a=INTEGER)
        right = RelationSchema.of("r", a=REAL)
        assert not left.compatible_with(right)

    def test_incompatible_degree(self):
        left = RelationSchema.of("l", a=INTEGER)
        right = RelationSchema.of("r", a=INTEGER, b=INTEGER)
        assert not left.compatible_with(right)

    def test_equality_includes_names(self):
        assert RelationSchema.of("t", a=INTEGER) == RelationSchema.of("t", a=INTEGER)
        assert RelationSchema.of("t", a=INTEGER) != RelationSchema.of("t", b=INTEGER)
        assert RelationSchema.of("t", a=INTEGER) != RelationSchema.of("u", a=INTEGER)


class TestDatabaseSchema:
    def test_add_and_get(self):
        db_schema = DatabaseSchema()
        beer = RelationSchema.of("beer", name=STRING)
        db_schema.add(beer)
        assert db_schema.get("beer") is beer
        assert db_schema["beer"] is beer
        assert "beer" in db_schema

    def test_add_unnamed_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSchema().add(RelationSchema.anonymous([INTEGER]))

    def test_duplicate_rejected(self):
        db_schema = DatabaseSchema([RelationSchema.of("t", a=INTEGER)])
        with pytest.raises(DuplicateRelationError):
            db_schema.add(RelationSchema.of("t", b=REAL))

    def test_add_validates_strictness(self):
        loose = RelationSchema("t", [("a", INTEGER), ("a", REAL)])
        with pytest.raises(DuplicateAttributeError):
            DatabaseSchema().add(loose)

    def test_unknown_get(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema().get("nope")

    def test_remove(self):
        db_schema = DatabaseSchema([RelationSchema.of("t", a=INTEGER)])
        db_schema.remove("t")
        assert "t" not in db_schema
        with pytest.raises(UnknownRelationError):
            db_schema.remove("t")

    def test_names_sorted(self):
        db_schema = DatabaseSchema(
            [RelationSchema.of("zeta", a=INTEGER), RelationSchema.of("alpha", a=INTEGER)]
        )
        assert db_schema.names() == ["alpha", "zeta"]
        assert len(db_schema) == 2
