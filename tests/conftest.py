"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.domains import INTEGER, REAL, STRING
from repro.multiset import Multiset
from repro.relation import Relation
from repro.schema import RelationSchema
from repro.workloads import tiny_beer_database

# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

#: Small bags of small ints — the workhorse for multiplicity-law tests.
int_bags = st.dictionaries(
    keys=st.integers(min_value=0, max_value=9),
    values=st.integers(min_value=1, max_value=5),
    max_size=8,
).map(Multiset)

#: Bags of (int, int) tuples usable as 2-column relations.
pair_bags = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)
    ),
    values=st.integers(min_value=1, max_value=4),
    max_size=10,
).map(Multiset)


def relation_strategy(degree: int = 2, max_value: int = 5, max_size: int = 10):
    """Relations over an all-integer schema of the given degree."""
    schema = RelationSchema(
        None, [(f"c{index}", INTEGER) for index in range(1, degree + 1)]
    )
    tuples = st.tuples(
        *[st.integers(min_value=0, max_value=max_value) for _ in range(degree)]
    )
    return st.dictionaries(
        keys=tuples, values=st.integers(min_value=1, max_value=4), max_size=max_size
    ).map(lambda counts: Relation.from_multiset(schema, Multiset(counts)))


int_relations = relation_strategy()
int_relations_deg1 = relation_strategy(degree=1)
int_relations_deg3 = relation_strategy(degree=3)


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def beer_db():
    """The paper's hand-sized beer/brewery database."""
    return tiny_beer_database()


@pytest.fixture
def beer_schema():
    return RelationSchema.of("beer", name=STRING, brewery=STRING, alcperc=REAL)


@pytest.fixture
def brewery_schema():
    return RelationSchema.of("brewery", name=STRING, city=STRING, country=STRING)


@pytest.fixture
def rng():
    return random.Random(1994)
