"""Tests for the fragment-parallel execution engine.

The load-bearing property is *differential*: a fragment-parallel plan —
any worker count, any backend — must be bag-identical to the reference
evaluator on arbitrary expressions.  That is exactly the content of
Theorems 3.2/3.3 (σ/π/π̂ distribute over ⊎, ⊎ re-associates), the
co-partitioned equi-join law, Γ on the grouping key, and the refined
δ/⊎ law on disjoint supports; these tests fuzz all of them at once
through the planner rewrite.
"""

import subprocess
import sys

import pytest

from repro.engine import evaluate, execute, plan
from repro.engine.parallel import (
    ExchangeOp,
    FragmentScheduler,
    FragmentedJoinOp,
    ParallelConfig,
    make_scheduler,
)
from repro.errors import EmptyAggregateError
from repro.database import Database
from repro.language import Session
from repro.relation import Relation
from repro.testing import ExpressionGenerator, random_environment
from repro.tuples import stable_hash
from repro.workloads import random_int_relation


@pytest.fixture(scope="module")
def env():
    return random_environment(tables=3, size=60, degree=2, value_space=5, seed=3)


def make_pool(workers, backend):
    # min_rows=0 forces real fan-out even on tiny fuzz inputs, so the
    # partitioning/recombination logic is exercised, not skipped.
    return FragmentScheduler(
        ParallelConfig(workers=workers, backend=backend, min_rows=0)
    )


def assert_parallel_matches_reference(env, scheduler, seeds, max_depth=5):
    for seed in seeds:
        generator = ExpressionGenerator(env, seed=seed, max_depth=max_depth)
        expr = generator.expression()
        try:
            reference = evaluate(expr, env)
        except EmptyAggregateError:
            with pytest.raises(EmptyAggregateError):
                execute(expr, env, parallel=scheduler)
            continue
        result = execute(expr, env, parallel=scheduler)
        assert result == reference, (
            f"parallel != reference for {expr!r} "
            f"({scheduler.workers}w {scheduler.config.backend})"
        )


class TestParallelParity:
    """workers × backend matrix, fuzzed against the reference evaluator."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_serial_backend(self, env, workers):
        with make_pool(workers, "serial") as scheduler:
            assert_parallel_matches_reference(env, scheduler, range(12))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_backend(self, env, workers):
        with make_pool(workers, "thread") as scheduler:
            assert_parallel_matches_reference(env, scheduler, range(8))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_backend(self, env, workers):
        with make_pool(workers, "process") as scheduler:
            assert_parallel_matches_reference(env, scheduler, range(8))

    def test_parallel_plan_contains_exchange_operators(self, env):
        with make_pool(4, "serial") as scheduler:
            seen = set()
            for seed in range(30):
                expr = ExpressionGenerator(env, seed=seed).expression()
                physical = plan(expr, parallel=scheduler)
                stack = [physical]
                while stack:
                    node = stack.pop()
                    seen.add(type(node))
                    stack.extend(node.children())
            assert ExchangeOp in seen
            assert FragmentedJoinOp in seen

    def test_without_scheduler_plan_is_unchanged(self, env):
        # The serial code path must be byte-for-byte the old planner.
        expr = ExpressionGenerator(env, seed=1).expression()
        assert plan(expr).explain() == plan(expr, parallel=None).explain()
        assert "exchange" not in plan(expr).explain()


class TestFragmentationLaws:
    def test_distinct_over_disjoint_fragments(self):
        # δ(f1 ⊎ ... ⊎ fn) = δ(f1) ⊎ ... ⊎ δ(fn) holds on hash
        # fragments because their supports are pairwise disjoint.
        from repro.extensions.parallel import hash_partition

        relation = random_int_relation(
            300, degree=2, value_space=4, seed=11, name="r"
        )
        parts = hash_partition(relation, None, 5)
        supports = [set(row for row, _ in part.pairs()) for part in parts]
        for i in range(len(supports)):
            for j in range(i + 1, len(supports)):
                assert not (supports[i] & supports[j])
        recombined = parts[0]
        for part in parts[1:]:
            recombined = recombined.union(part)
        assert recombined == relation
        fragmentwise = Relation.from_pairs(
            relation.schema,
            [pair for part in parts for pair in part.distinct().pairs()],
        )
        assert fragmentwise == relation.distinct()

    def test_group_by_with_empty_fragments(self):
        # Far more workers than distinct grouping keys: most hash
        # fragments are empty and must simply contribute nothing.
        relation = random_int_relation(
            200, degree=2, value_space=2, seed=5, name="r"
        )
        env = {"r": relation}
        from repro.algebra import RelationRef
        from repro.aggregates import Count

        expr = RelationRef("r", relation.schema).group_by([1], Count(), None)
        reference = evaluate(expr, env)
        with make_pool(8, "serial") as scheduler:
            assert execute(expr, env, parallel=scheduler) == reference

    def test_group_by_on_empty_relation(self):
        relation = random_int_relation(10, degree=2, seed=1, name="r")
        empty = Relation.empty(relation.schema)
        env = {"r": empty}
        from repro.algebra import RelationRef
        from repro.aggregates import Count

        expr = RelationRef("r", relation.schema).group_by([1], Count(), None)
        with make_pool(4, "serial") as scheduler:
            result = execute(expr, env, parallel=scheduler)
        assert len(result) == 0

    def test_min_rows_keeps_small_inputs_inline(self):
        # Below min_rows the exchange runs one inline fragment and the
        # scheduler never spins up a pool.
        relation = random_int_relation(20, degree=2, seed=2, name="r")
        env = {"r": relation}
        from repro.algebra import RelationRef

        expr = RelationRef("r", relation.schema).select("%1 >= 0").distinct()
        scheduler = FragmentScheduler(
            ParallelConfig(workers=4, backend="process", min_rows=10_000)
        )
        with scheduler:
            result = execute(expr, env, parallel=scheduler)
            assert scheduler._executor is None
        assert result == evaluate(expr, env)


class TestStableHash:
    def test_deterministic_across_hash_randomization(self):
        # The builtin hash of strings changes per interpreter run
        # (PYTHONHASHSEED); stable_hash must not, or fragments computed
        # in different worker processes would disagree.
        program = (
            "import datetime\n"
            "from repro.tuples import stable_hash\n"
            "values = ['beer', b'bytes', ('Pils', 7, None),"
            " datetime.date(1994, 2, 14), 3.5, True]\n"
            "print([stable_hash(v) for v in values])\n"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            ).stdout
            for seed in ("0", "12345")
        }
        assert len(outputs) == 1

    def test_numeric_cross_type_equality(self):
        # 1, 1.0 and True are equal tuples values and must co-partition.
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash((1, "x")) == stable_hash((1.0, "x"))

    def test_spreads_over_fragments(self):
        buckets = {stable_hash(("k", i)) % 8 for i in range(100)}
        assert len(buckets) > 1


class TestSchedulerLifecycle:
    def test_make_scheduler_coercions(self):
        assert make_scheduler(None) is None
        assert make_scheduler(0) is None
        assert make_scheduler(-3) is None
        scheduler = make_scheduler(2, "serial")
        assert scheduler.workers == 2
        assert scheduler.config.backend == "serial"
        assert make_scheduler(scheduler) is scheduler
        config = ParallelConfig(workers=3, backend="thread")
        assert make_scheduler(config).config is config
        with pytest.raises(TypeError):
            make_scheduler(True)
        with pytest.raises(TypeError):
            make_scheduler("4")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(backend="gpu")

    def test_process_pool_reused_and_closed(self):
        scheduler = make_pool(2, "process")
        relation = random_int_relation(400, degree=2, seed=9, name="r")
        env = {"r": relation}
        from repro.algebra import RelationRef

        expr = RelationRef("r", relation.schema).distinct()
        first = execute(expr, env, parallel=scheduler)
        executor = scheduler._executor
        second = execute(expr, env, parallel=scheduler)
        assert scheduler._executor is executor  # one pool per scheduler
        assert first == second == evaluate(expr, env)
        scheduler.close()
        assert scheduler._executor is None


class TestSessionSurface:
    def test_session_parallel_query_parity(self):
        relation = random_int_relation(500, degree=2, value_space=9, seed=4, name="r")
        db = Database()
        db.create_relation(relation.schema, relation)
        serial = Session(db)
        parallel = Session(db, parallel=make_scheduler(4, "thread"))
        expr = serial.relation("r").select("%1 > 2").project([1])
        assert parallel.query(expr) == serial.query(expr)
        parallel.close()

    def test_set_parallel_switches_and_disables(self):
        db = Database()
        session = Session(db)
        assert session.parallel is None
        scheduler = session.set_parallel(2, "serial")
        assert session.parallel is scheduler
        assert scheduler.workers == 2
        session.set_parallel(None)
        assert session.parallel is None
        session.set_parallel(0)
        assert session.parallel is None

    def test_reference_engine_session_refuses_parallel(self):
        db = Database()
        with pytest.raises(ValueError):
            Session(db, use_physical_engine=False, parallel=2)
        session = Session(db, use_physical_engine=False)
        with pytest.raises(ValueError):
            session.set_parallel(4)

    def test_transaction_runs_parallel(self):
        relation = random_int_relation(400, degree=2, value_space=6, seed=8, name="r")
        db = Database()
        db.create_relation(relation.schema, relation)
        session = Session(db, parallel=make_scheduler(2, "serial"))
        with session.transaction() as txn:
            out = txn.query(txn.relation("r").select("%1 > 1"))
        reference = Session(db).query(
            session.relation("r").select("%1 > 1")
        )
        assert out == reference
        session.close()
