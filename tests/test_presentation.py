"""Tests for the presentation-layer ordering and cursor."""

import pytest

from repro.domains import INTEGER, STRING
from repro.presentation import Cursor, order_rows
from repro.relation import Relation
from repro.schema import RelationSchema

SCHEMA = RelationSchema.of("t", country=STRING, score=INTEGER)


@pytest.fixture
def relation():
    return Relation(
        SCHEMA,
        [
            ("NL", 3),
            ("NL", 3),  # duplicate — must appear twice in any ordering
            ("BE", 9),
            ("NL", 1),
            ("BE", 2),
        ],
    )


class TestOrderRows:
    def test_single_key_ascending(self, relation):
        rows = order_rows(relation, ["score"])
        assert [row[1] for row in rows] == [1, 2, 3, 3, 9]

    def test_single_key_descending(self, relation):
        rows = order_rows(relation, [("score", True)])
        assert [row[1] for row in rows] == [9, 3, 3, 2, 1]

    def test_multi_key_mixed_directions(self, relation):
        rows = order_rows(relation, ["country", ("score", True)])
        assert rows == [
            ("BE", 9),
            ("BE", 2),
            ("NL", 3),
            ("NL", 3),
            ("NL", 1),
        ]

    def test_duplicates_preserved(self, relation):
        rows = order_rows(relation, ["score"])
        assert len(rows) == 5  # bag cardinality, not support size

    def test_positional_reference(self, relation):
        rows = order_rows(relation, ["%2"])
        assert rows[0][1] == 1

    def test_ordering_never_enters_the_algebra(self, relation):
        # order_rows returns a plain list, not a Relation or expression:
        # there is deliberately nothing to compose further.
        rows = order_rows(relation, ["score"])
        assert isinstance(rows, list)


class TestCursor:
    def test_fetchone_sequence(self, relation):
        cursor = Cursor(relation, order_by=["score"])
        assert cursor.fetchone() == ("NL", 1)
        assert cursor.fetchone() == ("BE", 2)
        assert cursor.position == 2

    def test_exhaustion_returns_none(self, relation):
        cursor = Cursor(relation)
        cursor.fetchall()
        assert cursor.fetchone() is None

    def test_fetchmany(self, relation):
        cursor = Cursor(relation, order_by=["score"])
        chunk = cursor.fetchmany(2)
        assert len(chunk) == 2
        assert len(cursor.fetchmany(100)) == 3  # short final chunk

    def test_fetchmany_negative_rejected(self, relation):
        with pytest.raises(ValueError):
            Cursor(relation).fetchmany(-1)

    def test_fetchall_and_rowcount(self, relation):
        cursor = Cursor(relation)
        assert cursor.rowcount == 5
        assert len(cursor.fetchall()) == 5

    def test_rewind(self, relation):
        cursor = Cursor(relation, order_by=["score"])
        first = cursor.fetchone()
        cursor.fetchall()
        cursor.rewind()
        assert cursor.fetchone() == first

    def test_iteration(self, relation):
        cursor = Cursor(relation, order_by=["score"])
        assert len(list(cursor)) == 5

    def test_columns(self, relation):
        cursor = Cursor(relation)
        assert cursor.columns == ["country", "score"]

    def test_default_order_deterministic(self, relation):
        assert Cursor(relation).fetchall() == Cursor(relation).fetchall()
