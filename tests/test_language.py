"""Tests for statements, programs, transactions, and sessions (Section 4)."""

import pytest

from repro.algebra import LiteralRelation, RelationRef, Select
from repro.database import Database
from repro.domains import INTEGER, STRING
from repro.errors import (
    DuplicateRelationError,
    SchemaMismatchError,
    TransactionAbort,
    TransactionError,
    UnknownRelationError,
)
from repro.language import (
    Assign,
    Delete,
    ExecutionContext,
    Insert,
    Program,
    Query,
    Session,
    Transaction,
    Update,
)
from repro.relation import Relation
from repro.schema import RelationSchema

T = RelationSchema.of("t", k=INTEGER, v=STRING)


def make_db(*rows):
    db = Database()
    db.create_relation(T, Relation(T, rows))
    return db


def lit(*rows):
    return LiteralRelation(Relation(T, rows))


def t_ref():
    return RelationRef("t", T)


class TestStatements:
    def test_insert_is_union(self):
        db = make_db((1, "a"))
        ctx = ExecutionContext(db.snapshot())
        Insert("t", lit((1, "a"), (2, "b"))).execute(ctx)
        assert ctx.relations["t"].multiplicity((1, "a")) == 2
        assert ctx.relations["t"].multiplicity((2, "b")) == 1

    def test_insert_schema_checked(self):
        db = make_db()
        ctx = ExecutionContext(db.snapshot())
        bad = LiteralRelation(
            Relation(RelationSchema.of("x", a=INTEGER), [(1,)])
        )
        with pytest.raises(SchemaMismatchError):
            Insert("t", bad).execute(ctx)

    def test_delete_is_monus(self):
        db = make_db((1, "a"), (1, "a"), (2, "b"))
        ctx = ExecutionContext(db.snapshot())
        Delete("t", lit((1, "a"), (1, "a"), (1, "a"))).execute(ctx)
        assert (1, "a") not in ctx.relations["t"]
        assert ctx.relations["t"].multiplicity((2, "b")) == 1

    def test_update_definition_4_1(self):
        # R ← (R − E) ⊎ π̂α(R ∩ E)
        db = make_db((1, "a"), (1, "a"), (2, "b"))
        ctx = ExecutionContext(db.snapshot())
        Update("t", lit((1, "a")), ["%1 * 10", "%2"]).execute(ctx)
        updated = ctx.relations["t"]
        # Only the intersected multiplicity (1 copy) is rewritten.
        assert updated.multiplicity((10, "a")) == 1
        assert updated.multiplicity((1, "a")) == 1
        assert updated.multiplicity((2, "b")) == 1

    def test_update_whole_multiplicity(self):
        db = make_db((1, "a"), (1, "a"))
        ctx = ExecutionContext(db.snapshot())
        Update("t", lit((1, "a"), (1, "a")), ["%1 + 1", "%2"]).execute(ctx)
        assert ctx.relations["t"].multiplicity((2, "a")) == 2

    def test_update_requires_structure_preservation(self):
        db = make_db((1, "a"))
        ctx = ExecutionContext(db.snapshot())
        with pytest.raises(SchemaMismatchError):
            Update("t", lit((1, "a")), ["%1"]).execute(ctx)  # drops a column

    def test_update_selector_schema_checked(self):
        db = make_db((1, "a"))
        ctx = ExecutionContext(db.snapshot())
        bad = LiteralRelation(Relation(RelationSchema.of("x", a=INTEGER), [(1,)]))
        with pytest.raises(SchemaMismatchError):
            Update("t", bad, ["%1"]).execute(ctx)

    def test_assign_binds_temporary(self):
        db = make_db((1, "a"))
        ctx = ExecutionContext(db.snapshot())
        Assign("copy", t_ref()).execute(ctx)
        assert ctx.temporaries["copy"].multiplicity((1, "a")) == 1
        assert "copy" not in ctx.relations

    def test_assign_cannot_shadow_base(self):
        db = make_db()
        ctx = ExecutionContext(db.snapshot())
        with pytest.raises(DuplicateRelationError):
            Assign("t", lit()).execute(ctx)

    def test_query_appends_output(self):
        db = make_db((1, "a"))
        ctx = ExecutionContext(db.snapshot())
        Query(t_ref()).execute(ctx)
        assert len(ctx.outputs) == 1
        assert ctx.outputs[0].multiplicity((1, "a")) == 1

    def test_statements_target_temporaries(self):
        db = make_db((1, "a"))
        ctx = ExecutionContext(db.snapshot())
        Assign("tmp", t_ref()).execute(ctx)
        Insert("tmp", lit((2, "b"))).execute(ctx)
        assert ctx.temporaries["tmp"].multiplicity((2, "b")) == 1

    def test_unknown_target(self):
        db = make_db()
        ctx = ExecutionContext(db.snapshot())
        with pytest.raises(UnknownRelationError):
            Insert("nope", lit()).execute(ctx)

    def test_reprs(self):
        assert "insert" in repr(Insert("t", t_ref()))
        assert ":=" in repr(Assign("x", t_ref()))
        assert repr(Query(t_ref())).startswith("?")


class TestPrograms:
    def test_sequential_visibility(self):
        db = make_db((1, "a"))
        ctx = ExecutionContext(db.snapshot())
        program = Program(
            [
                Assign("tmp", Select("k = 1", t_ref())),
                Insert("t", RelationRef("tmp", T)),
                Query(t_ref()),
            ]
        )
        program.execute(ctx)
        assert ctx.outputs[0].multiplicity((1, "a")) == 2

    def test_then_is_paper_composition(self):
        program = Program([Query(t_ref())]).then(Query(t_ref()))
        assert len(program) == 2

    def test_repr_joins_with_semicolons(self):
        program = Program([Query(t_ref()), Query(t_ref())])
        assert ";" in repr(program)


class TestTransactions:
    def test_commit_installs_and_drops_temporaries(self):
        db = make_db((1, "a"))
        transaction = Transaction(
            [
                Assign("tmp", t_ref()),
                Insert("t", RelationRef("tmp", T)),
            ]
        )
        result = transaction.run(db)
        assert result.committed
        assert db["t"].multiplicity((1, "a")) == 2
        assert "tmp" not in db
        assert db.logical_time == 1

    def test_abort_on_exception_restores_pre_state(self):
        db = make_db((1, "a"))

        class Boom(Exception):
            pass

        class FailingStatement:
            def execute(self, _ctx):
                raise Boom()

        transaction = Transaction([Insert("t", lit((2, "b"))), FailingStatement()])
        with pytest.raises(Boom):
            transaction.run(db)
        assert db["t"].multiplicity((2, "b")) == 0
        assert db.logical_time == 0

    def test_transaction_abort_reported_not_raised(self):
        db = make_db((1, "a"))

        class AbortingStatement:
            def execute(self, _ctx):
                raise TransactionAbort("changed my mind")

        transaction = Transaction([Insert("t", lit((2, "b"))), AbortingStatement()])
        result = transaction.run(db)
        assert not result.committed
        assert isinstance(result.error, TransactionAbort)
        assert db["t"].multiplicity((2, "b")) == 0

    def test_intermediate_states_recorded(self):
        db = make_db()
        transaction = Transaction(
            [Insert("t", lit((1, "a"))), Insert("t", lit((2, "b")))]
        )
        result = transaction.run(db, record_intermediate_states=True)
        # D^{t.0}, D^{t.1}, D^{t.2}
        assert len(result.intermediate_states) == 3
        _idx0, state0 = result.intermediate_states[0]
        _idx1, state1 = result.intermediate_states[1]
        assert len(state0["t"]) == 0
        assert len(state1["t"]) == 1

    def test_intermediate_states_contain_temporaries(self):
        db = make_db((1, "a"))
        transaction = Transaction([Assign("tmp", t_ref())])
        result = transaction.run(db, record_intermediate_states=True)
        _index, state = result.intermediate_states[-1]
        assert "tmp" in state  # "not normal database states"
        assert "tmp" not in db  # dropped at the end bracket

    def test_outputs_survive_abort(self):
        db = make_db((1, "a"))

        class AbortingStatement:
            def execute(self, _ctx):
                raise TransactionAbort()

        transaction = Transaction([Query(t_ref()), AbortingStatement()])
        result = transaction.run(db)
        assert not result.committed
        assert len(result.outputs) == 1

    def test_each_commit_is_one_transition(self):
        db = make_db()
        Transaction([Insert("t", lit((1, "a")))]).run(db)
        Transaction([Insert("t", lit((2, "b")))]).run(db)
        assert db.logical_time == 2
        assert len(db.transitions) == 2

    def test_non_constraint_object_rejected(self):
        db = make_db()
        with pytest.raises(TypeError):
            Transaction([Insert("t", lit((1, "a")))]).run(
                db, constraints=[object()]
            )


class TestSession:
    def test_query_does_not_change_state(self):
        db = make_db((1, "a"))
        session = Session(db)
        result = session.query(session.relation("t"))
        assert result.multiplicity((1, "a")) == 1
        assert db.logical_time == 0

    def test_autocommit_statements(self):
        db = make_db()
        session = Session(db)
        session.insert("t", lit((1, "a")))
        session.delete("t", lit((1, "a")))
        assert db.logical_time == 2
        assert not db["t"]

    def test_session_update(self):
        db = make_db((1, "a"))
        session = Session(db)
        session.update("t", lit((1, "a")), ["%1 + 1", "%2"])
        assert db["t"].multiplicity((2, "a")) == 1

    def test_transaction_context_manager_commits(self):
        db = make_db()
        session = Session(db)
        with session.transaction() as txn:
            txn.insert("t", lit((1, "a")))
            out = txn.query(txn.relation("t"))
            assert out.multiplicity((1, "a")) == 1  # sees own writes
            assert db["t"].multiplicity((1, "a")) == 0  # isolation
        assert db["t"].multiplicity((1, "a")) == 1

    def test_transaction_context_manager_rolls_back(self):
        db = make_db()
        session = Session(db)
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.insert("t", lit((1, "a")))
                raise RuntimeError("boom")
        assert not db["t"]
        assert db.logical_time == 0

    def test_explicit_abort_swallowed(self):
        db = make_db()
        session = Session(db)
        with session.transaction() as txn:
            txn.insert("t", lit((1, "a")))
            txn.abort("never mind")
        assert not db["t"]

    def test_finished_transaction_rejects_statements(self):
        db = make_db()
        session = Session(db)
        txn = session.transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("t", lit((1, "a")))

    def test_temporaries_visible_via_txn_relation(self):
        db = make_db((1, "a"))
        session = Session(db)
        with session.transaction() as txn:
            txn.assign("tmp", txn.relation("t"))
            out = txn.query(txn.relation("tmp"))
            assert len(out) == 1

    def test_reference_vs_physical_session_agree(self):
        db_physical = make_db((1, "a"), (1, "a"), (2, "b"))
        db_reference = make_db((1, "a"), (1, "a"), (2, "b"))
        query_physical = Session(db_physical, use_physical_engine=True)
        query_reference = Session(db_reference, use_physical_engine=False)
        expr = Select("k = 1", t_ref()).project(["v"])
        assert query_physical.query(expr) == query_reference.query(expr)
