"""Tests for the XRA front end: lexer, parser, interpreter."""

import pytest

from repro.database import Database
from repro.errors import XRAParseError
from repro.extensions import DomainConstraint
from repro.xra import (
    CreateRelation,
    StatementItem,
    TransactionItem,
    XRAInterpreter,
    parse_script,
    tokenize_xra,
)
from repro.workloads import tiny_beer_database


@pytest.fixture
def db():
    return tiny_beer_database()


@pytest.fixture
def xra(db):
    return XRAInterpreter(db)


class TestLexer:
    def test_comments_skipped(self):
        tokens = tokenize_xra("beer -- this is a comment\n;")
        assert [token.text for token in tokens] == ["beer", ";", ""]

    def test_assignment_operator(self):
        tokens = tokenize_xra("x := y")
        assert tokens[1].text == ":="

    def test_colon_alone(self):
        tokens = tokenize_xra("a: int")
        assert tokens[1].text == ":"

    def test_percent_refs(self):
        assert tokenize_xra("%12")[0].kind == "attr"

    def test_error_position(self):
        with pytest.raises(XRAParseError, match="position"):
            tokenize_xra("beer @")


class TestParser:
    def test_script_items(self, db):
        items = parse_script(
            "create t (a: int); ? beer; ( ? beer; ? brewery );",
            db.schema.get,
        )
        assert isinstance(items[0], CreateRelation)
        assert isinstance(items[1], StatementItem)
        assert isinstance(items[2], TransactionItem)
        assert len(items[2].statements) == 2

    def test_unknown_relation(self, db):
        with pytest.raises(XRAParseError, match="unknown relation"):
            parse_script("? nothere;", db.schema.get)

    def test_created_relation_visible_later(self, db):
        items = parse_script(
            "create t (a: int, b: string); ? t;", db.schema.get
        )
        assert len(items) == 2

    def test_dropped_relation_invisible_later(self, db):
        with pytest.raises(XRAParseError, match="dropped"):
            parse_script("drop beer; ? beer;", db.schema.get)

    def test_temporaries_typed_from_expression(self, db):
        items = parse_script(
            "( x := proj[%1](beer); ? sel[%1 = 'Pils'](x) );", db.schema.get
        )
        assert isinstance(items[0], TransactionItem)

    def test_trailing_semicolon_in_brackets(self, db):
        items = parse_script("( ? beer; );", db.schema.get)
        assert len(items[0].statements) == 1

    def test_literal_negative_numbers(self, db):
        parse_script("insert(beer, tuples[('x', 'y', -1.0)]);", db.schema.get)

    def test_malformed_statement(self, db):
        with pytest.raises(XRAParseError):
            parse_script("select beer;", db.schema.get)

    def test_unbalanced_condition(self, db):
        with pytest.raises(XRAParseError):
            parse_script("? sel[(%1 = 'x'](beer);", db.schema.get)


class TestInterpreter:
    def test_create_insert_query(self, xra, db):
        result = xra.run(
            """
            create visits (beer_name: string, visitors: int);
            insert(visits, tuples[('Pils', 10); ('Pils', 10); ('Bock', 3)]);
            ? visits;
            """
        )
        assert result.committed
        assert result.outputs[0].multiplicity(("Pils", 10)) == 2

    def test_query_operators(self, xra):
        result = xra.run(
            "? proj[%1](sel[%6 = 'Netherlands'](join[%2 = %4](beer, brewery)));"
        )
        assert result.outputs[0].multiplicity(("Pils",)) == 2

    def test_groupby_forms(self, xra):
        result = xra.run(
            """
            ? groupby[(country), AVG, alcperc](join[%2 = %4](beer, brewery));
            ? groupby[(), CNT, _](beer);
            """
        )
        grouped, counted = result.outputs
        assert grouped.multiplicity(("Belgium", 8.25)) == 1
        assert list(counted.pairs()) == [((6,), 1)]

    def test_set_operators(self, xra):
        result = xra.run(
            """
            ? union(beer, beer);
            ? diff(beer, sel[alcperc > 5.0](beer));
            ? inter(beer, sel[alcperc > 5.0](beer));
            ? unique(proj[name](union(beer, beer)));
            """
        )
        union, difference, intersection, uniques = result.outputs
        assert union.multiplicity(("Pils", "Guineken", 4.5)) == 2
        assert ("Bock", "Grolsch", 6.5) not in difference
        assert intersection.multiplicity(("Bock", "Grolsch", 6.5)) == 1
        assert uniques.multiplicity(("Pils",)) == 1

    def test_xproj_and_update(self, xra, db):
        xra.run(
            "update(beer, sel[brewery = 'Guineken'](beer), (%1, %2, %3 * 1.1));"
        )
        assert db["beer"].multiplicity(("Pils", "Guineken", 4.95)) == 1

    def test_transaction_atomicity(self, xra, db):
        # Second statement fails (unknown relation is a parse error, so use
        # a schema-mismatched insert instead).
        result = xra.run(
            """
            ( insert(beer, tuples[('X', 'Y', 1.0)]);
              delete(beer, sel[alcperc > 100.0](beer)) );
            """
        )
        assert result.committed
        assert db["beer"].multiplicity(("X", "Y", 1.0)) == 1

    def test_aborted_transaction_rolls_back(self, db):
        from repro.errors import SchemaMismatchError

        xra = XRAInterpreter(db)
        with pytest.raises(SchemaMismatchError):
            xra.run(
                """
                ( insert(beer, tuples[('X', 'Y', 1.0)]);
                  insert(beer, tuples[(1, 2)]) );
                """
            )
        assert ("X", "Y", 1.0) not in db["beer"]

    def test_constraints_checked_at_commit(self, db):
        xra = XRAInterpreter(
            db,
            constraints=[DomainConstraint("positive", "beer", "alcperc > 0.0")],
        )
        result = xra.run("insert(beer, tuples[('Bad', 'X', -1.0)]);")
        assert not result.committed
        assert ("Bad", "X", -1.0) not in db["beer"]

    def test_assignment_scoped_to_transaction(self, xra, db):
        result = xra.run(
            """
            ( strong := sel[alcperc > 6.0](beer);
              delete(beer, strong);
              ? strong );
            """
        )
        assert result.committed
        assert len(result.outputs[0]) == 3  # Tripel, Dubbel, Bock
        assert "strong" not in db

    def test_closure_extension(self, xra, db):
        result = xra.run(
            """
            create edge (src: string, dst: string);
            insert(edge, tuples[('a','b'); ('b','c')]);
            ? closure[src, dst](edge);
            """
        )
        closure = result.outputs[0]
        assert closure.multiplicity(("a", "c")) == 1
        assert len(closure) == 3

    def test_ddl_create_and_drop(self, xra, db):
        xra.run("create scratch (x: int); drop scratch;")
        assert "scratch" not in db

    def test_reference_engine_option(self, db):
        xra = XRAInterpreter(db, use_physical_engine=False, use_optimizer=False)
        result = xra.run("? proj[name](beer);")
        assert result.outputs[0].multiplicity(("Pils",)) == 2

    def test_script_result_repr(self, xra):
        result = xra.run("? beer;")
        assert "1 transaction(s)" in repr(result)


class TestConstraintDDL:
    """The `constraint` DDL extension (integrity control, paper ref [11])."""

    def make_interpreter(self):
        db = Database()
        xra = XRAInterpreter(db)
        xra.run(
            """
            create beer (name: string, brewery: string, alcperc: real);
            create brewery (name: string, city: string, country: string);
            insert(brewery, tuples[('Grolsch', 'Enschede', 'Netherlands')]);
            """
        )
        return db, xra

    def test_key_constraint_declared_and_enforced(self):
        db, xra = self.make_interpreter()
        xra.run("constraint key beer_pk on beer(name, brewery);")
        assert xra.run("insert(beer, tuples[('Pils', 'Grolsch', 4.5)]);").committed
        duplicate = xra.run("insert(beer, tuples[('Pils', 'Grolsch', 9.9)]);")
        assert not duplicate.committed
        assert len(db["beer"]) == 1

    def test_referential_constraint(self):
        db, xra = self.make_interpreter()
        xra.run(
            "constraint ref beer_fk on beer(brewery) references brewery(name);"
        )
        orphan = xra.run("insert(beer, tuples[('Ghost', 'Nowhere', 5.0)]);")
        assert not orphan.committed

    def test_check_constraint(self):
        db, xra = self.make_interpreter()
        xra.run("constraint check alc_pos on beer [alcperc > 0.0];")
        bad = xra.run("insert(beer, tuples[('Bad', 'Grolsch', -1.0)]);")
        assert not bad.committed

    def test_drop_constraint_restores_freedom(self):
        db, xra = self.make_interpreter()
        xra.run("constraint check alc_pos on beer [alcperc > 0.0];")
        xra.run("drop constraint alc_pos;")
        ok = xra.run("insert(beer, tuples[('Flat', 'Grolsch', -1.0)]);")
        assert ok.committed

    def test_constraint_on_unknown_relation_rejected(self):
        _db, xra = self.make_interpreter()
        with pytest.raises(XRAParseError, match="unknown relation"):
            xra.run("constraint key pk on ghost(a);")

    def test_malformed_constraint_kind(self):
        _db, xra = self.make_interpreter()
        with pytest.raises(XRAParseError, match="key"):
            xra.run("constraint unique pk on beer(name);")
