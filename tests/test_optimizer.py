"""Tests for the rewrite rules, the pipeline, and semantic preservation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import (
    Join,
    LiteralRelation,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.engine import StatisticsCatalog, estimate_cost, evaluate
from repro.optimizer import (
    MergeProjects,
    MergeSelects,
    PushProjectThroughUnion,
    PushSelectThroughProduct,
    PushSelectThroughProject,
    PushSelectThroughUnion,
    Rewriter,
    SelectIntoJoin,
    SelectProductToJoin,
    SplitSelect,
    optimize,
)
from repro.workloads import random_int_relation
from tests.conftest import int_relations


def lit(relation):
    return LiteralRelation(relation)


R1 = random_int_relation(20, value_space=5, seed=1, name="r1")
R2 = random_int_relation(15, value_space=5, seed=2, name="r2")


class TestIndividualRules:
    def test_split_select(self):
        expr = Select("%1 = 1 and %2 = 2", lit(R1))
        rewritten = SplitSelect().apply(expr)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.operand, Select)

    def test_split_select_no_match_on_simple_condition(self):
        assert SplitSelect().apply(Select("%1 = 1", lit(R1))) is None

    def test_merge_selects_inverse_of_split(self):
        expr = Select("%1 = 1", Select("%2 = 2", lit(R1)))
        merged = MergeSelects().apply(expr)
        assert isinstance(merged, Select)
        assert not isinstance(merged.operand, Select)
        assert evaluate(merged, {}) == evaluate(expr, {})

    def test_push_select_through_union(self):
        expr = Select("%1 = 1", Union(lit(R1), lit(R1)))
        rewritten = PushSelectThroughUnion().apply(expr)
        assert isinstance(rewritten, Union)
        assert isinstance(rewritten.left, Select)
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_push_project_through_union(self):
        expr = Project.__new__(Project)  # avoid confusion: use fluent form
        expr = Union(lit(R1), lit(R1)).project(["%2"])
        rewritten = PushProjectThroughUnion().apply(expr)
        assert isinstance(rewritten, Union)
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_push_select_through_product_left(self):
        expr = Select("%1 = 1", Product(lit(R1), lit(R2)))
        rewritten = PushSelectThroughProduct().apply(expr)
        assert isinstance(rewritten, Product)
        assert isinstance(rewritten.left, Select)
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_push_select_through_product_right(self):
        expr = Select("%3 = 1", Product(lit(R1), lit(R2)))
        rewritten = PushSelectThroughProduct().apply(expr)
        assert isinstance(rewritten.right, Select)
        # The pushed condition is rebased to the right operand's columns.
        assert repr(rewritten.right.condition) == "(%1 = 1)"
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_push_select_through_join_operand(self):
        expr = Select("%4 = 2", Join(lit(R1), lit(R2), "%1 = %3"))
        rewritten = PushSelectThroughProduct().apply(expr)
        assert isinstance(rewritten, Join)
        assert isinstance(rewritten.right, Select)
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_push_select_spanning_both_sides_no_match(self):
        expr = Select("%1 = %3", Product(lit(R1), lit(R2)))
        assert PushSelectThroughProduct().apply(expr) is None

    def test_push_select_through_project(self):
        expr = Select("%1 = 2", lit(R1).project(["%2", "%1"]))
        rewritten = PushSelectThroughProject().apply(expr)
        assert isinstance(rewritten, Project)
        assert isinstance(rewritten.operand, Select)
        # %1 of the projection output is %2 of the input.
        assert repr(rewritten.operand.condition) == "(%2 = 2)"
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_select_product_to_join(self):
        expr = Select("%1 = %3", Product(lit(R1), lit(R2)))
        rewritten = SelectProductToJoin().apply(expr)
        assert isinstance(rewritten, Join)
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_select_product_one_sided_not_joined(self):
        expr = Select("%1 = 1", Product(lit(R1), lit(R2)))
        assert SelectProductToJoin().apply(expr) is None

    def test_select_into_join(self):
        expr = Select("%2 < %4", Join(lit(R1), lit(R2), "%1 = %3"))
        rewritten = SelectIntoJoin().apply(expr)
        assert isinstance(rewritten, Join)
        assert evaluate(rewritten, {}) == evaluate(expr, {})

    def test_merge_projects_composes_positions(self):
        expr = lit(R1).project(["%2", "%1"]).project(["%2"])
        rewritten = MergeProjects().apply(expr)
        assert isinstance(rewritten, Project)
        assert rewritten.positions == (1,)
        assert evaluate(rewritten, {}) == evaluate(expr, {})


class TestRewriter:
    def test_fixpoint_reached(self):
        rewriter = Rewriter([SplitSelect(), PushSelectThroughProduct()])
        expr = Select("%1 = 1 and %3 = 2", Product(lit(R1), lit(R2)))
        result = rewriter.rewrite(expr)
        # Both conjuncts pushed to their operands; no top-level select left.
        assert isinstance(result, Product)

    def test_trace_records_rules(self):
        trace = []
        rewriter = Rewriter([SplitSelect()])
        rewriter.rewrite(Select("%1 = 1 and %2 = 2", lit(R1)), trace)
        assert trace and trace[0][0] == "split-select"

    def test_max_passes_bounds_runaway(self):
        class Flipper:
            name = "flipper"

            def apply(self, expr):
                if isinstance(expr, Unique):
                    return Unique(expr.operand)  # rewrites to equal node
                return None

        rewriter = Rewriter([Flipper()], max_passes=3)
        # Terminates despite the rule always "succeeding".
        rewriter.rewrite(Unique(lit(R1)))


class TestPipeline:
    def test_classic_pushdown_shape(self):
        expr = Select(
            "%1 = %3 and %2 = 1 and %4 = 2", Product(lit(R1), lit(R2))
        )
        optimized = optimize(expr)
        # One join at the top, selections at the leaves.
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)
        assert isinstance(optimized.right, Select)
        assert evaluate(optimized, {}) == evaluate(expr, {})

    def test_optimizer_never_moves_delta_through_union(self):
        expr = Unique(Union(lit(R1), lit(R1)))
        optimized = optimize(expr)
        assert evaluate(optimized, {}) == evaluate(expr, {})
        assert isinstance(optimized, Unique)  # delta stays put

    def test_cost_based_pipeline_with_catalog(self):
        env = {"r1": R1.rename("r1"), "r2": R2.rename("r2")}
        catalog = StatisticsCatalog.from_env(env)
        e1 = RelationRef("r1", R1.schema.renamed("r1"))
        e2 = RelationRef("r2", R2.schema.renamed("r2"))
        expr = Select("%1 = %3 and %2 = 0", Product(e1, e2))
        optimized = optimize(expr, catalog)
        assert evaluate(optimized, env) == evaluate(expr, env)
        assert estimate_cost(optimized, catalog) <= estimate_cost(expr, catalog)


class TestSemanticPreservationProperty:
    @given(int_relations, int_relations, st.sampled_from(
        ["%1 = %3", "%1 = %3 and %2 = 1", "%2 < %4 and %1 = %3", "%1 = 1 and %3 = 2"]
    ))
    def test_optimize_preserves_select_product(self, r1, r2, condition):
        expr = Select(condition, Product(lit(r1), lit(r2)))
        assert evaluate(optimize(expr), {}) == evaluate(expr, {})

    @given(int_relations, int_relations)
    def test_optimize_preserves_union_pipelines(self, r1, r2):
        expr = Select("%1 > 1", Union(lit(r1), lit(r2))).project(["%2"])
        assert evaluate(optimize(expr), {}) == evaluate(expr, {})

    @given(int_relations)
    def test_optimize_preserves_groupby(self, r):
        expr = Select("%1 > 0", lit(r)).group_by(["%1"], "CNT", None)
        assert evaluate(optimize(expr), {}) == evaluate(expr, {})
