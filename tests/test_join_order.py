"""Tests for associativity-based join re-ordering (Theorem 3.3 applied)."""

from hypothesis import given, settings

from repro.algebra import Join, LiteralRelation, Product, RelationRef, Select
from repro.engine import StatisticsCatalog, estimate_cost, evaluate
from repro.optimizer import (
    enumerate_associations,
    flatten_join_cluster,
    reorder_joins,
)
from repro.workloads import join_chain_relations, random_int_relation
from tests.conftest import int_relations


def refs_and_env(relations):
    env = {}
    refs = []
    for relation in relations:
        name = relation.schema.name
        env[name] = relation
        refs.append(RelationRef(name, relation.schema))
    return refs, env


def chain_expr(refs):
    """Left-deep chain joined on consecutive key columns."""
    expr = refs[0]
    for ref in refs[1:]:
        width = expr.schema.degree
        expr = Join(expr, ref, f"%{width} = %{width + 1}")
    return expr


class TestFlatten:
    def test_flatten_collects_leaves_in_order(self):
        relations = join_chain_relations(3, [10, 10, 10], [5, 5, 5, 5], seed=1)
        refs, _env = refs_and_env(relations)
        expr = chain_expr(refs)
        leaves, conjuncts = flatten_join_cluster(expr)
        assert [leaf.schema.name for leaf in leaves] == ["r1", "r2", "r3"]
        assert len(conjuncts) == 2

    def test_flatten_none_for_non_join(self):
        r = random_int_relation(5)
        assert flatten_join_cluster(LiteralRelation(r)) is None

    def test_flatten_handles_products(self):
        relations = join_chain_relations(2, [5, 5], [3, 3, 3], seed=2)
        refs, _env = refs_and_env(relations)
        leaves, conjuncts = flatten_join_cluster(Product(refs[0], refs[1]))
        assert len(leaves) == 2
        assert conjuncts == []


class TestEnumerate:
    def test_catalan_counts(self):
        assert len(enumerate_associations(2)) == 1
        assert len(enumerate_associations(3)) == 2
        assert len(enumerate_associations(4)) == 5
        assert len(enumerate_associations(5)) == 14

    def test_single_leaf(self):
        assert enumerate_associations(1) == [0]


class TestReorder:
    def test_preserves_semantics_on_chain(self):
        relations = join_chain_relations(
            4, [60, 40, 20, 10], [10, 4, 50, 6, 8], seed=3
        )
        refs, env = refs_and_env(relations)
        expr = chain_expr(refs)
        catalog = StatisticsCatalog.from_env(env)
        reordered = reorder_joins(expr, catalog)
        assert evaluate(reordered, env) == evaluate(expr, env)

    def test_never_costs_more_than_original(self):
        relations = join_chain_relations(
            4, [100, 10, 100, 5], [20, 3, 30, 3, 10], seed=4
        )
        refs, env = refs_and_env(relations)
        expr = chain_expr(refs)
        catalog = StatisticsCatalog.from_env(env)
        reordered = reorder_joins(expr, catalog)
        assert estimate_cost(reordered, catalog) <= estimate_cost(expr, catalog)

    def test_column_order_preserved(self):
        """Associativity must not permute columns (no commutativity)."""
        relations = join_chain_relations(3, [10, 10, 10], [5, 5, 5, 5], seed=5)
        refs, env = refs_and_env(relations)
        expr = chain_expr(refs)
        catalog = StatisticsCatalog.from_env(env)
        reordered = reorder_joins(expr, catalog)
        assert reordered.schema.names() == expr.schema.names()

    def test_single_leaf_conditions_become_selections(self):
        relations = join_chain_relations(2, [20, 20], [5, 5, 5], seed=6)
        refs, env = refs_and_env(relations)
        expr = Join(refs[0], refs[1], "%2 = %3 and %1 = 1")
        catalog = StatisticsCatalog.from_env(env)
        reordered = reorder_joins(expr, catalog)
        assert evaluate(reordered, env) == evaluate(expr, env)

        def has_select(node):
            if isinstance(node, Select):
                return True
            return any(has_select(child) for child in node.children())

        assert has_select(reordered)

    def test_recurses_through_non_join_nodes(self):
        relations = join_chain_relations(3, [10, 10, 10], [4, 4, 4, 4], seed=7)
        refs, env = refs_and_env(relations)
        expr = chain_expr(refs).project(["%1"])
        catalog = StatisticsCatalog.from_env(env)
        reordered = reorder_joins(expr, catalog)
        assert evaluate(reordered, env) == evaluate(expr, env)

    def test_wide_cluster_left_untouched(self):
        relations = join_chain_relations(
            3, [5, 5, 5], [3, 3, 3, 3], seed=8
        )
        refs, env = refs_and_env(relations)
        expr = chain_expr(refs)
        catalog = StatisticsCatalog.from_env(env)
        untouched = reorder_joins(expr, catalog, max_leaves=2)
        assert untouched == expr

    @settings(max_examples=25)
    @given(int_relations, int_relations, int_relations)
    def test_property_semantics_preserved(self, r1, r2, r3):
        env = {"a": r1.rename("a"), "b": r2.rename("b"), "c": r3.rename("c")}
        refs = [
            RelationRef(name, relation.schema.renamed(name))
            for name, relation in env.items()
        ]
        expr = Join(
            Join(refs[0], refs[1], "%2 = %3"), refs[2], "%4 = %5"
        )
        catalog = StatisticsCatalog.from_env(env)
        reordered = reorder_joins(expr, catalog)
        assert evaluate(reordered, env) == evaluate(expr, env)
