"""Tests for the command-line shell (in-process and via subprocess)."""

import io
import subprocess
import sys


from repro.cli import Shell
from repro.workloads import tiny_beer_database


def run_shell(text: str, database=None):
    """Feed ``text`` to an in-process shell; return (stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    shell = Shell(database or tiny_beer_database(), out=out, err=err)
    shell.run(io.StringIO(text))
    return out.getvalue(), err.getvalue()


class TestXraInput:
    def test_simple_query(self):
        out, err = run_shell("? proj[name](beer);\n")
        assert "Pils" in out
        assert not err

    def test_multiline_statement_buffered(self):
        out, err = run_shell("? proj[name](\nbeer\n);\n")
        assert "Pils" in out
        assert not err

    def test_semicolon_inside_string_not_terminator(self):
        out, err = run_shell("? sel[name = 'no; problem'](beer);\n")
        assert "0 tuple(s)" in out
        assert not err

    def test_statement_changes_database(self):
        db = tiny_beer_database()
        run_shell("delete(beer, beer);\n.tables\n", db)
        assert not db["beer"]

    def test_parse_error_reported_not_fatal(self):
        out, err = run_shell("? bogus(beer);\n? proj[name](beer);\n")
        assert "error:" in err
        assert "Pils" in out  # the shell kept going

    def test_transaction_brackets(self):
        out, err = run_shell(
            "( x := sel[alcperc > 9.0](beer); delete(beer, x); ? beer );\n"
        )
        assert "tuple(s)" in out
        assert not err


class TestMetaCommands:
    def test_tables(self):
        out, _err = run_shell(".tables\n")
        assert "beer" in out and "brewery" in out

    def test_schema(self):
        out, _err = run_shell(".schema beer\n")
        assert "alcperc" in out

    def test_schema_unknown(self):
        _out, err = run_shell(".schema nope\n")
        assert "error" in err

    def test_sql_query(self):
        out, _err = run_shell(
            '.sql SELECT country, AVG(alcperc) FROM beer, brewery '
            "WHERE beer.brewery = brewery.name GROUP BY country\n"
        )
        assert "Netherlands" in out

    def test_sql_dml(self):
        db = tiny_beer_database()
        out, _err = run_shell(".sql DELETE FROM beer\n", db)
        assert "ok" in out
        assert not db["beer"]

    def test_explain(self):
        out, _err = run_shell(
            ".explain proj[%1](sel[%6 = 'Netherlands']"
            "(join[%2 = %4](beer, brewery)))\n"
        )
        assert "logical:" in out
        assert "optimized:" in out
        assert "hash-join" in out

    def test_time(self):
        out, _err = run_shell(".time\n")
        assert "logical time: 0" in out

    def test_quit_stops_processing(self):
        out, _err = run_shell(".quit\n? beer;\n")
        assert "tuple" not in out

    def test_unknown_command(self):
        out, _err = run_shell(".frobnicate\n")
        assert "unknown command" in out

    def test_help(self):
        out, _err = run_shell(".help\n")
        assert ".tables" in out


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path):
        db = tiny_beer_database()
        path = tmp_path / "beer.csv"
        out, err = run_shell(
            f".save beer {path}\n.load beer2 {path}\n.tables\n", db
        )
        assert "saved" in out and "loaded" in out
        assert db["beer2"] == db["beer"]

    def test_load_usage_error(self):
        _out, err = run_shell(".load onlyname\n")
        assert "usage" in err

    def test_save_unknown_relation(self, tmp_path):
        _out, err = run_shell(f".save ghost {tmp_path / 'x.csv'}\n")
        assert "error" in err


class TestSubprocessEntryPoints:
    def test_script_file(self, tmp_path):
        script = tmp_path / "demo.xra"
        script.write_text(
            "create t (a: int);\n"
            "insert(t, tuples[(1); (1); (2)]);\n"
            "? groupby[(), CNT, _](t);\n"
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", str(script)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "3" in completed.stdout

    def test_sql_script_file(self, tmp_path):
        script = tmp_path / "demo.sql"
        script.write_text("SELECT 1 + 1 AS two FROM t")
        # The table t does not exist: the shell must report, not crash.
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--sql", str(script)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "error" in completed.stderr

    def test_stdin_pipe(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro"],
            input=".tables\n.quit\n",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0


class TestProfileCommand:
    def test_profile_renders_counters(self):
        out, err = run_shell(
            ".profile proj[%1](join[%2 = %4](beer, brewery))\n"
        )
        assert "operator" in out
        assert "scan beer" in out
        assert "result:" in out
        assert not err

    def test_profile_parse_error(self):
        _out, err = run_shell(".profile bogus(beer)\n")
        assert "error" in err


class TestParallelCommand:
    def test_enable_and_status(self):
        out, err = run_shell(
            ".parallel 3 serial\n.parallel\n? proj[name](beer);\n"
        )
        assert out.count("parallel execution: 3 worker(s), serial backend") == 2
        assert "Pils" in out
        assert not err

    def test_off_and_bare_status(self):
        out, _err = run_shell(".parallel off\n.parallel\n")
        assert "parallel execution off" in out
        assert "parallel execution is off" in out

    def test_bad_arguments_reported(self):
        out, err = run_shell(".parallel lots\n.parallel 2 gpu\n")
        assert "usage:" in err
        assert "unknown parallel backend" in err
        assert "worker" not in out

    def test_configures_session_and_interpreter(self):
        out, err = io.StringIO(), io.StringIO()
        shell = Shell(tiny_beer_database(), out=out, err=err)
        shell.handle_meta(".parallel 2 thread")
        assert shell.session.parallel is shell.interpreter._parallel
        assert shell.session.parallel.workers == 2
        shell.handle_meta(".parallel off")
        assert shell.session.parallel is None
        assert shell.interpreter._parallel is None

    def test_parallel_flag_subprocess(self):
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "--parallel",
                "2",
                "--parallel-backend",
                "thread",
            ],
            input=".parallel\n.quit\n",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "parallel execution: 2 worker(s), thread backend" in completed.stdout
