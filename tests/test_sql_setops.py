"""Tests for SQL set operations and IN-subqueries.

SQL's ALL / non-ALL split on UNION / EXCEPT / INTERSECT is the direct
descendant of this paper's bag/set distinction; the translation maps it
onto ⊎ / − / ∩ with δ exactly where the standard says duplicates go.
"""

import pytest

from repro.engine import evaluate, execute
from repro.errors import SQLTranslationError
from repro.language import Session
from repro.sql import parse_sql, sql_to_algebra, sql_to_statement
from repro.sql.ast import SetOperation
from repro.workloads import tiny_beer_database


@pytest.fixture
def db():
    return tiny_beer_database()


@pytest.fixture
def env(db):
    return dict(db.as_env())


class TestSetOperationParsing:
    def test_union_all_flag(self):
        parsed = parse_sql("SELECT name FROM a UNION ALL SELECT name FROM b")
        assert isinstance(parsed, SetOperation)
        assert parsed.operator == "union" and parsed.all

    def test_left_associative_chain(self):
        parsed = parse_sql(
            "SELECT n FROM a UNION SELECT n FROM b EXCEPT SELECT n FROM c"
        )
        assert parsed.operator == "except"
        assert isinstance(parsed.left, SetOperation)

    def test_intersect_binds_tighter(self):
        parsed = parse_sql(
            "SELECT n FROM a UNION SELECT n FROM b INTERSECT SELECT n FROM c"
        )
        assert parsed.operator == "union"
        assert isinstance(parsed.right, SetOperation)
        assert parsed.right.operator == "intersect"

    def test_parenthesised_compound(self):
        parsed = parse_sql(
            "(SELECT n FROM a UNION SELECT n FROM b) INTERSECT SELECT n FROM c"
        )
        assert parsed.operator == "intersect"
        assert isinstance(parsed.left, SetOperation)


class TestSetOperationSemantics:
    def test_union_all_is_additive(self, db, env):
        expr = sql_to_algebra(
            "SELECT name FROM beer UNION ALL SELECT name FROM brewery", db.schema
        )
        result = evaluate(expr, env)
        assert len(result) == 10
        assert result.multiplicity(("Pils",)) == 2

    def test_union_deduplicates(self, db, env):
        expr = sql_to_algebra(
            "SELECT name FROM beer UNION SELECT name FROM brewery", db.schema
        )
        result = evaluate(expr, env)
        assert result.multiplicity(("Pils",)) == 1
        assert all(count == 1 for _row, count in result.pairs())

    def test_except_all_is_monus(self, db, env):
        expr = sql_to_algebra(
            "SELECT brewery FROM beer EXCEPT ALL SELECT name FROM brewery",
            db.schema,
        )
        result = evaluate(expr, env)
        # Grolsch brews twice, its name appears once in brewery: 2−1=1.
        assert result.multiplicity(("Grolsch",)) == 1
        assert result.multiplicity(("Westmalle",)) == 1  # 2−1
        assert ("Guinness",) not in result  # 1−1

    def test_except_distinct(self, db, env):
        expr = sql_to_algebra(
            "SELECT brewery FROM beer EXCEPT SELECT name FROM brewery",
            db.schema,
        )
        # Every brewing brewery is in the brewery relation: empty result.
        assert not evaluate(expr, env)

    def test_intersect_all_is_min(self, db, env):
        expr = sql_to_algebra(
            "SELECT brewery FROM beer INTERSECT ALL SELECT name FROM brewery",
            db.schema,
        )
        result = evaluate(expr, env)
        assert result.multiplicity(("Grolsch",)) == 1  # min(2, 1)

    def test_intersect_distinct(self, db, env):
        expr = sql_to_algebra(
            "SELECT brewery FROM beer INTERSECT SELECT name FROM brewery",
            db.schema,
        )
        result = evaluate(expr, env)
        assert all(count == 1 for _row, count in result.pairs())
        assert result.distinct_count == 4

    def test_incompatible_schemas_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="incompatible"):
            sql_to_algebra(
                "SELECT name FROM beer UNION ALL SELECT alcperc FROM beer",
                db.schema,
            )

    def test_physical_engine_agrees(self, db, env):
        expr = sql_to_algebra(
            "SELECT name FROM beer UNION SELECT name FROM brewery "
            "EXCEPT ALL SELECT brewery FROM beer",
            db.schema,
        )
        assert execute(expr, env) == evaluate(expr, env)

    def test_insert_from_compound_query(self, db):
        session = Session(db)
        statement = sql_to_statement(
            "INSERT INTO brewery SELECT * FROM brewery "
            "UNION ALL SELECT * FROM brewery",
            db.schema,
        )
        session.run([statement])
        assert len(db["brewery"]) == 12  # 4 + 2·4


class TestInSubqueries:
    def test_in_preserves_multiplicities(self, db, env):
        """Example 3.1 reformulated with IN — the Pils duplicate survives."""
        expr = sql_to_algebra(
            "SELECT name FROM beer WHERE brewery IN "
            "(SELECT name FROM brewery WHERE country = 'Netherlands')",
            db.schema,
        )
        result = evaluate(expr, env)
        assert result.multiplicity(("Pils",)) == 2
        assert result.multiplicity(("Bock",)) == 1
        assert len(result) == 3

    def test_not_in_is_exact_complement(self, db, env):
        positive = sql_to_algebra(
            "SELECT name FROM beer WHERE brewery IN "
            "(SELECT name FROM brewery WHERE country = 'Netherlands')",
            db.schema,
        )
        negative = sql_to_algebra(
            "SELECT name FROM beer WHERE brewery NOT IN "
            "(SELECT name FROM brewery WHERE country = 'Netherlands')",
            db.schema,
        )
        everything = sql_to_algebra("SELECT name FROM beer", db.schema)
        assert evaluate(positive, env).union(evaluate(negative, env)) == evaluate(
            everything, env
        )

    def test_in_with_other_conjuncts(self, db, env):
        expr = sql_to_algebra(
            "SELECT name FROM beer WHERE alcperc > 4.4 AND brewery IN "
            "(SELECT name FROM brewery WHERE country = 'Netherlands')",
            db.schema,
        )
        result = evaluate(expr, env)
        assert len(result) == 3  # both Pils (4.5) and Bock (6.5)

    def test_in_with_duplicated_subquery_rows_no_inflation(self, db, env):
        # The subquery yields 'Grolsch' etc. once per *brewery*, but even a
        # duplicated subquery result must not inflate outer multiplicities:
        expr = sql_to_algebra(
            "SELECT name FROM beer WHERE brewery IN "
            "(SELECT brewery FROM beer)",  # duplicates galore
            db.schema,
        )
        result = evaluate(expr, env)
        assert result == evaluate(
            sql_to_algebra("SELECT name FROM beer", db.schema), env
        )

    def test_in_under_or_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="top-level"):
            sql_to_algebra(
                "SELECT name FROM beer WHERE alcperc > 9.0 OR brewery IN "
                "(SELECT name FROM brewery)",
                db.schema,
            )

    def test_multicolumn_subquery_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="single-column"):
            sql_to_algebra(
                "SELECT name FROM beer WHERE brewery IN "
                "(SELECT name, city FROM brewery)",
                db.schema,
            )

    def test_in_on_computed_operand(self, db, env):
        expr = sql_to_algebra(
            "SELECT name FROM beer WHERE alcperc + 0.5 IN "
            "(SELECT alcperc FROM beer)",
            db.schema,
        )
        result = evaluate(expr, env)
        # 6.5 = 7.0 − 0.5: Dubbel(7.0) matches via Bock's 6.5? No: we ask
        # alcperc + 0.5 ∈ alcperc values; 4.5+0.5=5.0 no; 6.5+0.5=7.0 yes
        # (Dubbel); 9.5+0.5 no; 7.0+0.5 no; 4.2+0.5 no.
        assert sorted(result.support()) == [("Bock",)]

    def test_physical_engine_agrees_on_semijoin(self, db, env):
        expr = sql_to_algebra(
            "SELECT name FROM beer WHERE brewery NOT IN "
            "(SELECT name FROM brewery WHERE country = 'Belgium')",
            db.schema,
        )
        assert execute(expr, env) == evaluate(expr, env)


class TestJoinSyntaxAndAliases:
    def test_explicit_join_on(self, db, env):
        expr = sql_to_algebra(
            "SELECT beer.name FROM beer JOIN brewery "
            "ON beer.brewery = brewery.name WHERE country = 'Netherlands'",
            db.schema,
        )
        result = evaluate(expr, env)
        assert result.multiplicity(("Pils",)) == 2  # Example 3.1 again

    def test_inner_join_spelling(self, db, env):
        expr = sql_to_algebra(
            "SELECT b.name FROM beer AS b INNER JOIN brewery AS w "
            "ON b.brewery = w.name",
            db.schema,
        )
        assert len(evaluate(expr, env)) == 6

    def test_join_on_equivalent_to_comma_where(self, db, env):
        joined = sql_to_algebra(
            "SELECT beer.name FROM beer JOIN brewery "
            "ON beer.brewery = brewery.name",
            db.schema,
        )
        comma = sql_to_algebra(
            "SELECT beer.name FROM beer, brewery "
            "WHERE beer.brewery = brewery.name",
            db.schema,
        )
        assert evaluate(joined, env) == evaluate(comma, env)

    def test_self_join_with_aliases(self, db, env):
        expr = sql_to_algebra(
            "SELECT b1.name, b2.name FROM beer b1, beer b2 "
            "WHERE b1.brewery = b2.brewery AND b1.name <> b2.name",
            db.schema,
        )
        result = evaluate(expr, env)
        assert ("Pils", "Bock") in result
        assert ("Tripel", "Dubbel") in result

    def test_duplicate_unaliased_table_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="alias"):
            sql_to_algebra("SELECT 1 FROM beer, beer", db.schema)

    def test_alias_shadows_table_name_in_scope(self, db):
        # Once aliased, the original qualifier no longer resolves.
        with pytest.raises(SQLTranslationError, match="unknown attribute"):
            sql_to_algebra(
                "SELECT beer.name FROM beer b", db.schema
            )

    def test_chained_explicit_joins(self, db, env):
        expr = sql_to_algebra(
            "SELECT b.name FROM beer b "
            "JOIN brewery w ON b.brewery = w.name "
            "JOIN brewery w2 ON w.country = w2.country",
            db.schema,
        )
        result = evaluate(expr, env)
        # Dutch beers pair with 2 Dutch breweries, etc.
        assert result.multiplicity(("Bock",)) == 2

    def test_engines_agree_on_self_join(self, db, env):
        expr = sql_to_algebra(
            "SELECT b1.name FROM beer b1 JOIN beer b2 "
            "ON b1.alcperc = b2.alcperc WHERE b1.brewery <> b2.brewery",
            db.schema,
        )
        assert execute(expr, env) == evaluate(expr, env)


class TestHaving:
    def test_having_on_selected_aggregate(self, db, env):
        expr = sql_to_algebra(
            "SELECT country, COUNT(*) FROM beer JOIN brewery "
            "ON beer.brewery = brewery.name "
            "GROUP BY country HAVING COUNT(*) > 1",
            db.schema,
        )
        result = evaluate(expr, env)
        assert result.multiplicity(("Netherlands", 3)) == 1
        assert result.multiplicity(("Belgium", 2)) == 1
        assert all(row[0] != "Ireland" for row in result.support())

    def test_having_only_aggregate_not_in_select(self, db, env):
        expr = sql_to_algebra(
            "SELECT country FROM beer, brewery "
            "WHERE beer.brewery = brewery.name "
            "GROUP BY country HAVING MAX(alcperc) >= 9.0",
            db.schema,
        )
        assert sorted(evaluate(expr, env).support()) == [("Belgium",)]

    def test_having_mixes_grouping_attr_and_aggregate(self, db, env):
        expr = sql_to_algebra(
            "SELECT country, AVG(alcperc) FROM beer, brewery "
            "WHERE beer.brewery = brewery.name "
            "GROUP BY country HAVING AVG(alcperc) > 5.0 AND country <> 'Belgium'",
            db.schema,
        )
        assert sorted(row[0] for row in evaluate(expr, env).support()) == [
            "Netherlands"
        ]

    def test_having_whole_relation_aggregate(self, db, env):
        kept = sql_to_algebra(
            "SELECT COUNT(*) FROM beer HAVING COUNT(*) > 2", db.schema
        )
        dropped = sql_to_algebra(
            "SELECT COUNT(*) FROM beer HAVING COUNT(*) > 100", db.schema
        )
        assert list(evaluate(kept, env).pairs()) == [((6,), 1)]
        assert not evaluate(dropped, env)

    def test_having_non_grouping_attribute_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="not a\n?.*grouping|grouping"):
            sql_to_algebra(
                "SELECT country, COUNT(*) FROM beer, brewery "
                "WHERE beer.brewery = brewery.name "
                "GROUP BY country HAVING city = 'Malle'",
                db.schema,
            )

    def test_having_without_group_by_or_aggregates_rejected(self, db):
        with pytest.raises(SQLTranslationError, match="HAVING requires"):
            sql_to_algebra(
                "SELECT name FROM beer HAVING name = 'Pils'", db.schema
            )

    def test_having_duplicate_calls_computed_once(self, db, env):
        # COUNT(*) appears in the select list and twice in HAVING; the
        # translation must reuse one Γ column, and the results agree.
        expr = sql_to_algebra(
            "SELECT country, COUNT(*) FROM beer, brewery "
            "WHERE beer.brewery = brewery.name "
            "GROUP BY country HAVING COUNT(*) > 1 AND COUNT(*) < 5",
            db.schema,
        )
        result = evaluate(expr, env)
        assert {row[0] for row in result.support()} == {"Netherlands", "Belgium"}

    def test_having_engines_agree(self, db, env):
        expr = sql_to_algebra(
            "SELECT country FROM beer, brewery "
            "WHERE beer.brewery = brewery.name "
            "GROUP BY country HAVING SUM(alcperc) > 10.0",
            db.schema,
        )
        assert execute(expr, env) == evaluate(expr, env)
