"""The concurrent query server: protocol, isolation, and the differential.

The centerpiece is the differential test: N concurrent clients interleave
reads and writes against one server, and the resulting history must be
bag-identical to a *serial* replay of the same committed schedule — every
committed write is one logical-time transition, every read observes
exactly the state its pinned logical time names.  That is the paper's
state-sequence semantics (Section 4) surviving real concurrency.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.database import Database
from repro.domains import DATE, INTEGER, MONEY, STRING
from repro.errors import ReproError
from repro.relation import Relation
from repro.schema import RelationSchema
from repro.server import (
    ServerConfig,
    relation_from_wire,
    relation_to_wire,
    serve_in_background,
)
from repro.server.client import RemoteError, ServerClient
from repro.xra import XRAInterpreter

SEED_SCRIPT = """
create acct(owner: string, amount: integer);
insert(acct, tuples[('alice', 10); ('bob', 20); ('carol', 30)]);
"""


def seeded_database() -> Database:
    database = Database()
    XRAInterpreter(database).run(SEED_SCRIPT)
    return database


@pytest.fixture
def server():
    handle = serve_in_background(
        seeded_database(), ServerConfig(query_timeout=15.0)
    )
    yield handle
    handle.stop()


def connect(handle) -> ServerClient:
    return ServerClient(*handle.address)


# ---------------------------------------------------------------------------
# Wire basics
# ---------------------------------------------------------------------------


def test_hello_carries_schema_and_time(server) -> None:
    with connect(server) as client:
        assert client.hello["protocol"] == 1
        assert client.hello["relations"] == ["acct"]
        assert client.hello["logical_time"] == 1
        assert "client_id" in client.hello


def test_autocommit_roundtrip(server) -> None:
    with connect(server) as client:
        client.xra("insert(acct, tuples[('dave', 40)]);")
        (result,) = client.xra("? sel[%2 >= 20](acct);")
        assert len(result) == 3
        (names,) = client.sql("SELECT owner FROM acct WHERE amount > 25")
        assert sorted(row[0] for row, _ in names.pairs()) == ["carol", "dave"]


def test_typed_values_roundtrip_the_wire() -> None:
    schema = RelationSchema.of(
        "ledger", who=STRING, paid=MONEY, day=DATE, n=INTEGER
    )
    import datetime
    import decimal

    relation = Relation.from_pairs(
        schema,
        [
            (("ann", decimal.Decimal("12.50"), datetime.date(2024, 3, 1), 2), 3),
            (("bob", decimal.Decimal("0.99"), datetime.date(2024, 3, 2), 1), 1),
        ],
    )
    wired = json.loads(json.dumps(relation_to_wire(relation)))
    back = relation_from_wire(wired)
    assert back == relation  # bag equality, typed values restored


def test_tables_and_ping(server) -> None:
    with connect(server) as client:
        (entry,) = client.tables()
        assert entry["name"] == "acct" and entry["rows"] == 3
        assert client.ping() == 1


# ---------------------------------------------------------------------------
# Snapshot isolation (satellite: concurrent-session cache invalidation)
# ---------------------------------------------------------------------------


def test_snapshot_isolation(server) -> None:
    """A reader inside an open transaction must not observe a concurrent
    writer's commit until its own transaction ends."""
    with connect(server) as reader, connect(server) as writer:
        reader.begin()
        (before,) = reader.xra("? acct;")
        assert len(before) == 3

        writer.xra("insert(acct, tuples[('mallory', 99)]);")
        (writer_view,) = writer.xra("? acct;")
        assert len(writer_view) == 4  # the writer's commit is visible to it

        # The pinned reader still sees the state it began at — the shared
        # result cache must not leak the post-commit bag into the pin.
        (during,) = reader.xra("? acct;")
        assert during == before

        reader.commit()  # read-only: commits without a transition
        (after,) = reader.xra("? acct;")
        assert len(after) == 4


def test_transaction_sees_its_own_writes(server) -> None:
    with connect(server) as client:
        client.begin()
        client.xra("insert(acct, tuples[('dave', 40)]);")
        (inside,) = client.xra("? acct;")
        assert len(inside) == 4
        response = client.commit()
        assert response["relations"] == ["acct"]
        (outside,) = client.xra("? acct;")
        assert len(outside) == 4


def test_write_conflict_first_committer_wins(server) -> None:
    with connect(server) as first, connect(server) as second:
        first.begin()
        first.xra("insert(acct, tuples[('x', 1)]);")
        second.xra("insert(acct, tuples[('y', 2)]);")  # auto-commit wins
        with pytest.raises(RemoteError) as caught:
            first.commit()
        assert caught.value.code == "REPRO-CONFLICT"
        assert "acct" in str(caught.value)
        # The loser rolled back: retry on a fresh snapshot succeeds.
        first.begin()
        first.xra("insert(acct, tuples[('x', 1)]);")
        assert first.commit()["committed"] is True
        (result,) = first.xra("? acct;")
        assert len(result) == 5


def test_rollback_discards_the_working_state(server) -> None:
    with connect(server) as client:
        client.begin()
        client.xra("delete(acct, acct);")
        (inside,) = client.xra("? acct;")
        assert len(inside) == 0
        client.rollback()
        (after,) = client.xra("? acct;")
        assert len(after) == 3


def test_disconnect_rolls_back_open_transaction(server) -> None:
    client = connect(server)
    client.begin()
    client.xra("delete(acct, acct);")
    client.close()  # no commit
    with connect(server) as fresh:
        (result,) = fresh.xra("? acct;")
        assert len(result) == 3


def test_concurrent_cache_invalidation(server) -> None:
    """Auto-commit readers on one connection see another connection's
    commits immediately — the shared cache invalidates on epoch bump."""
    with connect(server) as reader, connect(server) as writer:
        query = "? sel[%2 > 0](acct);"
        (cold,) = reader.xra(query)
        (warm,) = reader.xra(query)  # result-level hit
        assert warm == cold
        writer.xra("insert(acct, tuples[('zoe', 7)]);")
        (fresh,) = reader.xra(query)
        assert len(fresh) == len(cold) + 1
        stats = server.server.cache.stats
        assert stats.result_hits >= 1
        assert stats.invalidations + stats.result_misses >= 2


# ---------------------------------------------------------------------------
# Admission control, timeouts, shutdown
# ---------------------------------------------------------------------------


def test_query_timeout_returns_immediately(monkeypatch) -> None:
    from repro.server.sessions import ServerSession

    slow = threading.Event()
    original = ServerSession.run_statements

    def stalling(statements, context):
        slow.wait(5.0)
        return original(statements, context)

    handle = serve_in_background(
        seeded_database(),
        ServerConfig(query_timeout=0.2, admission_timeout=2.0),
    )
    try:
        monkeypatch.setattr(
            ServerSession, "run_statements", staticmethod(stalling)
        )
        with connect(handle) as client:
            started = time.perf_counter()
            with pytest.raises(RemoteError) as caught:
                client.xra("? acct;")
            elapsed = time.perf_counter() - started
            assert caught.value.code == "REPRO-TIMEOUT"
            assert elapsed < 2.0  # answered long before the thread ends
            slow.set()
            monkeypatch.setattr(
                ServerSession, "run_statements", staticmethod(original)
            )
            assert client.ping() == 1  # the connection survived
    finally:
        slow.set()
        handle.stop()


def test_timed_out_write_never_installs(monkeypatch) -> None:
    from repro.server.sessions import ServerSession

    release = threading.Event()
    original = ServerSession.run_statements

    def stalling(statements, context):
        release.wait(5.0)
        return original(statements, context)

    handle = serve_in_background(
        seeded_database(), ServerConfig(query_timeout=0.2)
    )
    try:
        monkeypatch.setattr(
            ServerSession, "run_statements", staticmethod(stalling)
        )
        with connect(handle) as client:
            with pytest.raises(RemoteError) as caught:
                client.xra("insert(acct, tuples[('late', 1)]);")
            assert caught.value.code == "REPRO-TIMEOUT"
            release.set()
            monkeypatch.setattr(
                ServerSession, "run_statements", staticmethod(original)
            )
            time.sleep(0.3)  # let the abandoned thread finish
            (result,) = client.xra("? acct;")
            assert len(result) == 3  # the timed-out insert was discarded
    finally:
        release.set()
        handle.stop()


def test_admission_control_refuses_when_saturated(monkeypatch) -> None:
    from repro.server.sessions import ServerSession

    release = threading.Event()
    original = ServerSession.run_statements

    def stalling(statements, context):
        release.wait(10.0)
        return original(statements, context)

    handle = serve_in_background(
        seeded_database(),
        ServerConfig(
            max_inflight=1, admission_timeout=0.2, query_timeout=15.0
        ),
    )
    try:
        monkeypatch.setattr(
            ServerSession, "run_statements", staticmethod(stalling)
        )
        hog = connect(handle)
        result: list = []

        def occupy() -> None:
            try:
                result.append(hog.xra("? acct;"))
            except Exception as error:  # noqa: BLE001 - recorded for debug
                result.append(error)

        thread = threading.Thread(target=occupy)
        thread.start()
        time.sleep(0.15)  # let the hog take the only slot
        with connect(handle) as client:
            with pytest.raises(RemoteError) as caught:
                client.xra("? acct;")
            assert caught.value.code == "REPRO-BUSY"
        release.set()
        thread.join(10.0)
        hog.close()
    finally:
        release.set()
        handle.stop()


def test_connection_limit() -> None:
    handle = serve_in_background(
        seeded_database(), ServerConfig(max_connections=1)
    )
    try:
        with connect(handle):
            with pytest.raises(RemoteError) as caught:
                connect(handle)
            assert caught.value.code == "REPRO-BUSY"
    finally:
        handle.stop()


def test_graceful_shutdown_closes_clients(server) -> None:
    client = connect(server)
    assert client.ping() == 1
    server.stop()
    with pytest.raises((RemoteError, ConnectionError, OSError)):
        client.ping()
    client.close()


# ---------------------------------------------------------------------------
# Protocol and semantic errors on the wire
# ---------------------------------------------------------------------------


def test_unknown_op_is_a_protocol_error(server) -> None:
    with connect(server) as client:
        with pytest.raises(RemoteError) as caught:
            client.request("frobnicate")
        assert caught.value.code == "REPRO-PROTOCOL"


def test_commit_without_begin_is_a_protocol_error(server) -> None:
    with connect(server) as client:
        with pytest.raises(RemoteError) as caught:
            client.commit()
        assert caught.value.code == "REPRO-PROTOCOL"


def test_ddl_inside_transaction_is_refused(server) -> None:
    with connect(server) as client:
        client.begin()
        with pytest.raises(RemoteError) as caught:
            client.xra("create extra(x: integer);")
        assert caught.value.code == "REPRO-PROTOCOL"


def test_raw_garbage_line_gets_an_error_response(server) -> None:
    host, port = server.address
    with socket.create_connection((host, port), timeout=5) as sock:
        stream = sock.makefile("rb")
        json.loads(stream.readline())  # hello
        sock.sendall(b"this is not json\n")
        response = json.loads(stream.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "REPRO-PROTOCOL"


def test_semantic_errors_keep_their_codes(server) -> None:
    with connect(server) as client:
        with pytest.raises(RemoteError) as caught:
            client.xra("? ghost;")
        assert caught.value.code in ("REPRO-XRA-PARSE", "REPRO-UNKNOWN-RELATION")
        with pytest.raises(RemoteError) as caught:
            client.sql("SELECT FROM")
        assert caught.value.code == "REPRO-SQL-PARSE"
        assert isinstance(caught.value, ReproError)


def test_constraint_violation_travels_as_repro_constraint(server) -> None:
    with connect(server) as client:
        client.xra("constraint check positive on acct [%2 > 0];")
        with pytest.raises(RemoteError) as caught:
            client.xra("insert(acct, tuples[('debt', -5)]);")
        assert caught.value.code == "REPRO-CONSTRAINT"
        (result,) = client.xra("? acct;")
        assert len(result) == 3  # the violating write never installed


# ---------------------------------------------------------------------------
# The differential: N concurrent clients == serial replay
# ---------------------------------------------------------------------------

N_CLIENTS = 8
OPS_PER_CLIENT = 6


def client_schedule(client: int) -> list:
    """A deterministic mixed schedule for one client."""
    ops = []
    for index in range(OPS_PER_CLIENT):
        kind = (client + index) % 3
        if kind == 0:
            ops.append(
                ("write",
                 f"insert(acct, tuples[('c{client}', {index + 1})]);")
            )
        elif kind == 1:
            ops.append(
                ("write",
                 f"delete(acct, sel[%1 = 'c{client}'](acct));")
            )
        else:
            ops.append(("read", "? sel[%2 >= 1](acct);"))
    return ops


def test_differential_concurrent_equals_serial_replay() -> None:
    handle = serve_in_background(
        seeded_database(), ServerConfig(query_timeout=30.0)
    )
    log_lock = threading.Lock()
    writes: list = []   # (logical_time, text)
    reads: list = []    # (logical_time, text, wire document)
    failures: list = []
    barrier = threading.Barrier(N_CLIENTS)

    def run_client(client_id: int) -> None:
        try:
            with connect(handle) as client:
                barrier.wait(timeout=30)
                for kind, text in client_schedule(client_id):
                    response = client.xra_response(text)
                    with log_lock:
                        if kind == "write":
                            writes.append(
                                (response["logical_time"], text)
                            )
                        else:
                            reads.append(
                                (
                                    response["logical_time"],
                                    text,
                                    response["results"][0],
                                )
                            )
        except Exception as error:  # noqa: BLE001 - surfaced below
            failures.append((client_id, error))

    threads = [
        threading.Thread(target=run_client, args=(client_id,))
        for client_id in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    try:
        assert not failures, failures
        with connect(handle) as client:
            (final_concurrent,) = client.xra("? acct;")
            final_time = client.ping()
    finally:
        handle.stop()

    # Every committed write is exactly one transition: the logical times
    # of the writes enumerate 2..final_time with no gaps or duplicates.
    write_times = sorted(t for t, _ in writes)
    assert write_times == list(range(2, final_time + 1))

    # Serial replay of the same schedule, in commit order.
    replay = seeded_database()
    interpreter = XRAInterpreter(replay)
    states = {replay.logical_time: replay.snapshot()}
    for logical_time, text in sorted(writes):
        interpreter.run(text)
        assert replay.logical_time == logical_time
        states[logical_time] = replay.snapshot()

    assert replay.get("acct") == final_concurrent

    # Every concurrent read saw exactly the state its pinned time names.
    for logical_time, text, document in reads:
        observed = relation_from_wire(document)
        env = dict(states[logical_time])
        expected = XRAInterpreter(_database_from_state(env)).run(text)
        assert observed == expected.outputs[0], (
            f"read at t={logical_time} diverged: {text}"
        )


def _database_from_state(state: dict) -> Database:
    database = Database()
    for name, relation in state.items():
        database.create_relation(relation.schema.strict(), relation)
    return database
