"""The documentation's Python code blocks, executed.

Every fenced block whose info string is exactly ``python`` in
``README.md`` and ``docs/*.md`` is extracted and run — blocks within
one file share a namespace and run in order, matching how a reader
would follow the page top to bottom.  A block that must not run (a
fragment, pseudo-code) opts out with the info string ``python skip``.

This is what the README's "the examples cannot rot" claim cashes out
to: renaming an API without updating the docs fails this test.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, NamedTuple

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))],
    key=lambda path: path.name,
)

FENCE = re.compile(r"^```(.*)$")


class CodeBlock(NamedTuple):
    path: Path
    line: int  # 1-based line of the block's first code line
    source: str


def extract_python_blocks(path: Path) -> List[CodeBlock]:
    blocks: List[CodeBlock] = []
    info = None
    body: List[str] = []
    start = 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = FENCE.match(line)
        if match is None:
            if info is not None:
                body.append(line)
            continue
        if info is None:  # opening fence
            info = match.group(1).strip()
            body = []
            start = number + 1
        else:  # closing fence
            if info == "python":
                blocks.append(CodeBlock(path, start, "\n".join(body)))
            info = None
    assert info is None, f"{path}: unclosed code fence"
    return blocks


def test_every_doc_page_is_scanned():
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    # The docs index in the README promises these pages exist.
    for page in (
        "architecture.md",
        "caching.md",
        "formal_model.md",
        "lint.md",
        "observability.md",
        "parallel.md",
        "server.md",
        "sql_reference.md",
        "vectorized.md",
        "xra_reference.md",
    ):
        assert page in names, f"docs/{page} missing"


def test_the_docs_contain_runnable_examples():
    total = sum(len(extract_python_blocks(path)) for path in DOC_FILES)
    assert total >= 8, f"only {total} runnable doc blocks found"


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[path.name for path in DOC_FILES]
)
def test_doc_code_blocks_execute(path: Path):
    blocks = extract_python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python code blocks")
    namespace: dict = {"__name__": f"docs_example_{path.stem}"}
    for block in blocks:
        # Pad with blank lines so tracebacks point at the real markdown
        # line number inside the source file.
        padded = "\n" * (block.line - 1) + block.source
        code = compile(padded, str(path.relative_to(REPO_ROOT)), "exec")
        try:
            exec(code, namespace)  # noqa: S102 - the docs are trusted input
        except Exception as error:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"{path.relative_to(REPO_ROOT)} block at line {block.line} "
                f"failed: {type(error).__name__}: {error}"
            ) from error
