"""Property tests lifting the bag laws to typed relations.

The container laws (test_multiset_properties) concern raw bags; these
check that the *relation* layer preserves them through schema plumbing,
and add the laws that only exist at relation level (projection /
selection interplay, group-by totals, product cardinalities).
"""

from hypothesis import given

from repro.aggregates import CNT, SUM
from tests.conftest import int_relations, int_relations_deg3


class TestLiftedBagLaws:
    @given(int_relations, int_relations)
    def test_union_commutes(self, r1, r2):
        assert r1.union(r2) == r2.union(r1)

    @given(int_relations, int_relations)
    def test_min_via_double_monus(self, r1, r2):
        assert r1.difference(r1.difference(r2)) == r1.intersection(r2)

    @given(int_relations)
    def test_distinct_fixpoint(self, r):
        assert r.distinct().distinct() == r.distinct()

    @given(int_relations, int_relations)
    def test_union_cardinality(self, r1, r2):
        assert len(r1.union(r2)) == len(r1) + len(r2)


class TestProjectionLaws:
    @given(int_relations)
    def test_projection_preserves_cardinality(self, r):
        assert len(r.project(["%1"])) == len(r)

    @given(int_relations)
    def test_full_projection_is_identity(self, r):
        assert r.project(["%1", "%2"]) == r

    @given(int_relations)
    def test_projection_composes(self, r):
        once = r.project(["%2", "%1"]).project(["%2"])
        direct = r.project(["%1"])
        assert once == direct

    @given(int_relations)
    def test_selection_projection_commute_when_independent(self, r):
        # σ on %1 commutes with a π that keeps %1 in front.
        keep = r.project(["%1"]).select(lambda row: row[0] > 2)
        other = r.select(lambda row: row[0] > 2).project(["%1"])
        assert keep == other


class TestSelectionLaws:
    @given(int_relations)
    def test_selection_idempotent(self, r):
        predicate = lambda row: row[0] != row[1]
        assert r.select(predicate).select(predicate) == r.select(predicate)

    @given(int_relations)
    def test_selection_partition(self, r):
        predicate = lambda row: row[0] > 2
        inverse = lambda row: not predicate(row)
        assert r.select(predicate).union(r.select(inverse)) == r

    @given(int_relations)
    def test_selection_monotone(self, r):
        assert r.select(lambda row: row[0] > 2) <= r


class TestProductLaws:
    @given(int_relations, int_relations)
    def test_product_cardinality_multiplies(self, r1, r2):
        assert len(r1.product(r2)) == len(r1) * len(r2)

    @given(int_relations)
    def test_product_with_empty(self, r):
        from repro.relation import Relation

        empty = Relation.empty(r.schema)
        assert not r.product(empty)
        assert not empty.product(r)

    @given(int_relations, int_relations)
    def test_projection_undoes_product_up_to_scaling(self, r1, r2):
        # π back onto the left columns yields r1 with every multiplicity
        # scaled by |r2| — a direct consequence of the product equation.
        projected = r1.product(r2).project(["%1", "%2"])
        assert projected.tuples == r1.tuples.scale(len(r2))


class TestGroupByLaws:
    @given(int_relations)
    def test_counts_per_group_sum_to_total(self, r):
        grouped = r.group_by(["%1"], CNT, None)
        total = sum(row[1] for row, _count in grouped.pairs())
        assert total == len(r)

    @given(int_relations)
    def test_group_sums_add_to_whole_sum(self, r):
        grouped = r.group_by(["%1"], SUM, "%2")
        total = sum(row[1] for row, _count in grouped.pairs())
        assert total == r.aggregate(SUM, "%2") if r else total == 0

    @given(int_relations)
    def test_one_group_per_distinct_key(self, r):
        grouped = r.group_by(["%1"], CNT, None)
        keys = {row[0] for row, _count in r.pairs()}
        assert grouped.distinct_count == len(keys)

    @given(int_relations_deg3)
    def test_multi_attribute_grouping(self, r):
        grouped = r.group_by(["%1", "%2"], CNT, None)
        total = sum(row[2] for row, _count in grouped.pairs())
        assert total == len(r)
