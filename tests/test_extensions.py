"""Tests for the Section 5 extensions: closure, constraints, parallel ops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aggregates import CNT, SUM
from repro.algebra import LiteralRelation
from repro.database import Database
from repro.engine import evaluate, execute
from repro.errors import ConstraintViolationError, ExpressionTypeError
from repro.extensions import (
    DomainConstraint,
    FragmentReport,
    KeyConstraint,
    ReferentialConstraint,
    TransitiveClosure,
    closure_by_iteration,
    hash_partition,
    parallel_distinct,
    parallel_equijoin,
    parallel_group_by,
    parallel_project,
    parallel_select,
    transitive_closure_pairs,
)
from repro.domains import INTEGER, STRING
from repro.language import Insert, Session, Transaction
from repro.relation import Relation
from repro.schema import RelationSchema
from repro.workloads import random_int_relation, tiny_beer_database
from tests.conftest import int_relations

EDGE = RelationSchema.of("edge", src=STRING, dst=STRING)


def edges(*pairs):
    return Relation(EDGE, pairs)


class TestTransitiveClosurePairs:
    def test_chain(self):
        closed = transitive_closure_pairs({("a", "b"), ("b", "c"), ("c", "d")})
        assert ("a", "d") in closed
        assert len(closed) == 6

    def test_cycle(self):
        closed = transitive_closure_pairs({("a", "b"), ("b", "a")})
        assert ("a", "a") in closed
        assert ("b", "b") in closed

    def test_empty(self):
        assert transitive_closure_pairs(set()) == set()

    def test_disconnected(self):
        closed = transitive_closure_pairs({("a", "b"), ("x", "y")})
        assert len(closed) == 2


class TestClosureOperator:
    def test_as_algebra_node(self):
        relation = edges(("a", "b"), ("b", "c"))
        node = TransitiveClosure(LiteralRelation(relation), "src", "dst")
        result = evaluate(node, {})
        assert result.multiplicity(("a", "c")) == 1
        assert len(result) == 3

    def test_duplicate_free_result(self):
        # Bag input with duplicated edges still yields multiplicity-1 pairs.
        relation = edges(("a", "b"), ("a", "b"), ("b", "c"))
        node = TransitiveClosure(LiteralRelation(relation), "src", "dst")
        result = evaluate(node, {})
        assert result.multiplicity(("a", "b")) == 1

    def test_schema_from_endpoints(self):
        relation = Relation(
            RelationSchema.of("flight", frm=STRING, to=STRING, dist=INTEGER),
            [("AMS", "BRU", 150)],
        )
        node = TransitiveClosure(LiteralRelation(relation), "frm", "to")
        assert node.schema.degree == 2
        assert node.schema.names() == ("frm", "to")

    def test_mismatched_domains_rejected(self):
        relation = Relation(
            RelationSchema.of("x", a=STRING, b=INTEGER), [("p", 1)]
        )
        with pytest.raises(ExpressionTypeError):
            TransitiveClosure(LiteralRelation(relation), "a", "b")

    def test_physical_engine_supports_extension(self):
        relation = edges(("a", "b"), ("b", "c"))
        node = TransitiveClosure(LiteralRelation(relation), "src", "dst")
        assert execute(node, {}) == evaluate(node, {})

    def test_matches_iterated_join_formulation(self):
        relation = edges(
            ("a", "b"), ("b", "c"), ("c", "a"), ("d", "e"), ("e", "d")
        )
        node = TransitiveClosure(LiteralRelation(relation), "src", "dst")
        assert evaluate(node, {}) == closure_by_iteration(relation, "src", "dst")

    def test_tree_protocol(self):
        relation = edges(("a", "b"))
        node = TransitiveClosure(LiteralRelation(relation), "src", "dst")
        rebuilt = node.with_children(list(node.children()))
        assert rebuilt == node


class TestConstraints:
    def test_key_constraint_blocks_duplicates(self):
        db = tiny_beer_database()
        session = Session(
            db,
            constraints=[KeyConstraint("beer_pk", "beer", ["name", "brewery"])],
        )
        duplicate = LiteralRelation(
            Relation(db["beer"].schema, [("Pils", "Guineken", 9.9)])
        )
        result = session.insert("beer", duplicate)
        assert not result.committed
        assert isinstance(result.error, ConstraintViolationError)
        assert ("Pils", "Guineken", 9.9) not in db["beer"]

    def test_key_constraint_bag_twist(self):
        """A whole-tuple duplicate also violates the key."""
        schema = RelationSchema.of("k", a=INTEGER)
        db = Database()
        db.create_relation(schema, Relation(schema, [(1,), (1,)]))
        constraint = KeyConstraint("pk", "k", ["a"])
        with pytest.raises(ConstraintViolationError):
            constraint.check(db.snapshot())

    def test_referential_constraint(self):
        db = tiny_beer_database()
        constraint = ReferentialConstraint(
            "beer_brewery_fk", "beer", ["brewery"], "brewery", ["name"]
        )
        constraint.check(db.snapshot())  # holds initially
        session = Session(db, constraints=[constraint])
        orphan = LiteralRelation(
            Relation(db["beer"].schema, [("Ghost", "Nowhere", 5.0)])
        )
        result = session.insert("beer", orphan)
        assert not result.committed

    def test_domain_constraint(self):
        db = tiny_beer_database()
        constraint = DomainConstraint("alc_pos", "beer", "alcperc > 0.0")
        constraint.check(db.snapshot())
        session = Session(db, constraints=[constraint])
        bad = LiteralRelation(Relation(db["beer"].schema, [("Bad", "X", -0.1)]))
        assert not session.insert("beer", bad).committed

    def test_constraint_on_missing_relation_is_vacuous(self):
        DomainConstraint("x", "ghost", "true").check({})

    def test_transaction_runner_checks_constraints(self):
        db = tiny_beer_database()
        bad = LiteralRelation(Relation(db["beer"].schema, [("Bad", "X", -1.0)]))
        result = Transaction([Insert("beer", bad)]).run(
            db, constraints=[DomainConstraint("alc_pos", "beer", "alcperc > 0.0")]
        )
        assert not result.committed
        assert db.logical_time == 0


class TestHashPartition:
    @given(int_relations, st.integers(min_value=1, max_value=5))
    def test_fragments_reunite(self, relation, fragments):
        parts = hash_partition(relation, None, fragments)
        reunion = parts[0]
        for part in parts[1:]:
            reunion = reunion.union(part)
        assert reunion == relation

    @given(int_relations, st.integers(min_value=2, max_value=5))
    def test_fragments_disjoint_supports(self, relation, fragments):
        parts = hash_partition(relation, None, fragments)
        seen = set()
        for part in parts:
            support = part.support()
            assert not (seen & support)
            seen |= support

    def test_key_partitioning_coclusters(self):
        relation = random_int_relation(200, degree=2, value_space=10, seed=3)
        parts = hash_partition(relation, ["%1"], 4)
        # Every distinct %1 value lives in exactly one fragment.
        locations = {}
        for index, part in enumerate(parts):
            for row, _count in part.pairs():
                assert locations.setdefault(row[0], index) == index

    def test_zero_fragments_rejected(self):
        with pytest.raises(ValueError):
            hash_partition(random_int_relation(5), None, 0)


class TestParallelOperators:
    @given(int_relations, st.integers(min_value=1, max_value=4))
    def test_parallel_select_exact(self, relation, fragments):
        predicate = lambda row: row[0] > 2
        assert parallel_select(relation, predicate, fragments) == relation.select(
            predicate
        )

    @given(int_relations, st.integers(min_value=1, max_value=4))
    def test_parallel_project_exact(self, relation, fragments):
        assert parallel_project(relation, ["%2"], fragments) == relation.project(
            ["%2"]
        )

    @given(int_relations, st.integers(min_value=1, max_value=4))
    def test_parallel_distinct_exact(self, relation, fragments):
        """Valid despite δ/⊎ non-distribution — fragments are disjoint."""
        assert parallel_distinct(relation, fragments) == relation.distinct()

    @given(int_relations, int_relations, st.integers(min_value=1, max_value=4))
    def test_parallel_equijoin_exact(self, left, right, fragments):
        result = parallel_equijoin(left, right, ["%1"], ["%1"], fragments)
        serial = left.join(right, lambda row: row[0] == row[2])
        assert result == serial

    @given(int_relations, st.integers(min_value=1, max_value=4))
    def test_parallel_group_by_exact(self, relation, fragments):
        result = parallel_group_by(relation, ["%1"], SUM, "%2", fragments)
        serial = relation.group_by(["%1"], SUM, "%2")
        assert result == serial

    def test_parallel_group_by_needs_attrs(self):
        with pytest.raises(ValueError):
            parallel_group_by(random_int_relation(5), [], CNT, None, 2)

    def test_fragment_report_accounting(self):
        relation = random_int_relation(1000, value_space=30, seed=9)
        report = FragmentReport()
        parallel_select(relation, lambda row: True, 4, report)
        assert report.total_work == 1000
        assert report.critical_path >= 250
        assert 1.0 <= report.ideal_speedup <= 4.0

    def test_empty_report(self):
        report = FragmentReport()
        assert report.critical_path == 0
        assert report.ideal_speedup == 1.0

    def test_report_measures_wall_clock(self):
        relation = random_int_relation(600, value_space=20, seed=3)
        report = FragmentReport()
        parallel_distinct(relation, 4, report)
        assert report.parallel_seconds is not None
        assert report.parallel_seconds > 0
        assert report.workers == 1
        assert report.backend == "serial"
        # No serial baseline recorded -> no measured figure.
        assert report.measured_speedup is None
        report.serial_seconds = report.parallel_seconds * 2
        assert report.measured_speedup == pytest.approx(2.0)

    def test_wrappers_accept_real_scheduler(self):
        from repro.engine import FragmentScheduler, ParallelConfig

        relation = random_int_relation(500, value_space=12, seed=21)
        with FragmentScheduler(
            ParallelConfig(workers=2, backend="thread", min_rows=0)
        ) as scheduler:
            report = FragmentReport()
            result = parallel_group_by(
                relation, ["%1"], SUM, "%2", 4, report, scheduler=scheduler
            )
            assert result == relation.group_by(["%1"], SUM, "%2")
            assert report.workers == 2
            assert report.backend == "thread"
            assert parallel_select(
                relation, lambda row: row[0] > 2, 4, scheduler=scheduler
            ) == relation.select(lambda row: row[0] > 2)
