"""Tests for whole-database save/load."""

import json

import pytest

from repro.database import Database, load_database, save_database
from repro.errors import SchemaError
from repro.language import Session
from repro.workloads import BeerWorkload, tiny_beer_database


class TestRoundTrip:
    def test_contents_and_schema(self, tmp_path):
        db = tiny_beer_database()
        save_database(db, tmp_path / "saved")
        loaded = load_database(tmp_path / "saved")
        assert loaded.names() == db.names()
        for name in db.names():
            assert loaded[name] == db[name]
            assert loaded.schema.get(name) == db.schema.get(name)

    def test_logical_time_restored(self, tmp_path):
        db = tiny_beer_database()
        session = Session(db)
        session.delete("beer", session.relation("beer"))
        assert db.logical_time == 1
        save_database(db, tmp_path / "saved")
        loaded = load_database(tmp_path / "saved")
        assert loaded.logical_time == 1

    def test_multiplicities_survive(self, tmp_path):
        db = BeerWorkload(beers=300, name_pool=5, duplicate_fraction=0.5).database()
        save_database(db, tmp_path / "saved")
        loaded = load_database(tmp_path / "saved")
        assert loaded["beer"] == db["beer"]
        assert loaded["beer"].distinct_count < len(loaded["beer"])

    def test_loaded_database_is_usable(self, tmp_path):
        db = tiny_beer_database()
        save_database(db, tmp_path / "saved")
        loaded = load_database(tmp_path / "saved")
        session = Session(loaded)
        result = session.query(session.relation("beer").project(["name"]))
        assert result.multiplicity(("Pils",)) == 2

    def test_empty_database(self, tmp_path):
        save_database(Database(), tmp_path / "empty")
        loaded = load_database(tmp_path / "empty")
        assert loaded.names() == []


class TestErrorHandling:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SchemaError, match="manifest"):
            load_database(tmp_path)

    def test_unknown_format(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": "something-else"})
        )
        with pytest.raises(SchemaError, match="format"):
            load_database(tmp_path)

    def test_manifest_relation_mismatch(self, tmp_path):
        db = tiny_beer_database()
        save_database(db, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["relations"][0]["attributes"] = [
            {"name": "only", "domain": "integer"}
        ]
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SchemaError, match="does not match"):
            load_database(tmp_path)
