"""Tests for equi-depth histograms and histogram-aware selectivity."""

import pytest

from repro.algebra import RelationRef, Select
from repro.engine import StatisticsCatalog, estimate_cardinality
from repro.engine.histograms import EquiDepthHistogram, HistogramCatalog
from repro.relation import Relation
from repro.workloads import random_int_relation, zipf_relation
from repro.workloads.synthetic import int_schema


class TestEquiDepthHistogram:
    def test_build_uniform(self):
        histogram = EquiDepthHistogram.build(list(range(100)), buckets=10)
        assert histogram.total == 100
        assert histogram.distinct == 100
        assert len(histogram.bucket_counts) == 10
        assert sum(histogram.bucket_counts) == 100

    def test_empty(self):
        histogram = EquiDepthHistogram.build([], buckets=8)
        assert histogram.total == 0
        assert histogram.selectivity("<", 5) == 0.0

    def test_single_value(self):
        histogram = EquiDepthHistogram.build([7] * 50, buckets=4)
        assert histogram.distinct == 1
        assert histogram.selectivity("=", 7) == 1.0

    def test_range_selectivity_uniform(self):
        histogram = EquiDepthHistogram.build(list(range(1000)), buckets=20)
        assert histogram.selectivity("<", 500) == pytest.approx(0.5, abs=0.06)
        assert histogram.selectivity("<", 100) == pytest.approx(0.1, abs=0.06)
        assert histogram.selectivity(">", 900) == pytest.approx(0.1, abs=0.06)

    def test_range_selectivity_skewed(self):
        # 90% of the mass at small values: a median-split range predicate
        # is far from the 1/3 default.
        values = [1] * 900 + list(range(2, 102))
        histogram = EquiDepthHistogram.build(values, buckets=16)
        assert histogram.selectivity("<=", 1) > 0.8
        assert histogram.selectivity(">", 1) < 0.2

    def test_extremes(self):
        histogram = EquiDepthHistogram.build(list(range(10)), buckets=5)
        assert histogram.selectivity("<", -1) <= 0.2
        assert histogram.selectivity("<", 100) == 1.0
        assert histogram.selectivity(">", 100) == 0.0

    def test_equality_uses_distinct(self):
        histogram = EquiDepthHistogram.build([1, 1, 2, 2, 3, 3], buckets=3)
        assert histogram.selectivity("=", 2) == pytest.approx(1 / 3)
        assert histogram.selectivity("<>", 2) == pytest.approx(2 / 3)

    def test_incomparable_constant_neutral(self):
        histogram = EquiDepthHistogram.build([1, 2, 3], buckets=3)
        assert histogram.selectivity("<", "banana") == 0.5


class TestHistogramCatalog:
    def test_from_env(self):
        env = {"t": random_int_relation(200, degree=2, value_space=50, seed=1)}
        catalog = HistogramCatalog.from_env(env)
        assert catalog.get("t", 1) is not None
        assert catalog.get("t", 2) is not None
        assert catalog.get("t", 3) is None
        assert catalog.get("missing", 1) is None

    def test_multiplicity_weighted(self):
        relation = Relation(int_schema(1), {(5,): 99, (100,): 1})
        catalog = HistogramCatalog.from_env({"t": relation})
        histogram = catalog.get("t", 1)
        assert histogram.total == 100
        assert histogram.selectivity("<=", 5) > 0.9


class TestEstimatorIntegration:
    def test_histograms_sharpen_range_estimates(self):
        relation = zipf_relation(5000, degree=2, distinct=200, skew=1.5, seed=9)
        env = {"z": relation.rename("z")}
        plain = StatisticsCatalog.from_env(env)
        enriched = StatisticsCatalog.from_env(env, with_histograms=True)
        ref = RelationRef("z", relation.schema.renamed("z"))

        # Pick a threshold below which most of the skewed mass falls.
        values = sorted(row[0] for row in relation)
        threshold = values[int(len(values) * 0.9)]
        expr = Select(f"%1 <= {threshold}", ref)
        actual = len(relation.select(lambda row: row[0] <= threshold))

        plain_estimate = estimate_cardinality(expr, plain)
        enriched_estimate = estimate_cardinality(expr, enriched)
        assert abs(enriched_estimate - actual) < abs(plain_estimate - actual)

    def test_mirrored_comparison(self):
        relation = random_int_relation(1000, degree=1, value_space=100, seed=2)
        env = {"t": relation.rename("t")}
        enriched = StatisticsCatalog.from_env(env, with_histograms=True)
        ref = RelationRef("t", relation.schema.renamed("t"))
        forward = estimate_cardinality(Select("%1 < 50", ref), enriched)
        mirrored = estimate_cardinality(Select("50 > %1", ref), enriched)
        assert forward == pytest.approx(mirrored)

    def test_without_histograms_estimates_unchanged(self):
        relation = random_int_relation(100, degree=1, value_space=10, seed=3)
        env = {"t": relation.rename("t")}
        plain = StatisticsCatalog.from_env(env)
        ref = RelationRef("t", relation.schema.renamed("t"))
        estimate = estimate_cardinality(Select("%1 < 5", ref), plain)
        assert estimate == pytest.approx(100 / 3)
