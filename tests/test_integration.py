"""Cross-module integration tests: realistic end-to-end scenarios."""

import pytest

from repro import (
    Database,
    Relation,
    RelationSchema,
    Session,
    sql_to_algebra,
    sql_to_statement,
)
from repro.domains import INTEGER, REAL, STRING
from repro.engine import StatisticsCatalog, evaluate, execute
from repro.extensions import (
    DomainConstraint,
    KeyConstraint,
    ReferentialConstraint,
)
from repro.optimizer import optimize
from repro.workloads import BeerWorkload
from repro.xra import XRAInterpreter


class TestFullStackQuery:
    """SQL text -> algebra -> optimizer -> physical engine, vs ground truth."""

    @pytest.fixture
    def db(self):
        return BeerWorkload(beers=800, breweries=40, seed=5).database()

    def test_sql_optimized_physical_matches_reference(self, db):
        query = (
            "SELECT country, COUNT(*), AVG(alcperc) FROM beer, brewery "
            "WHERE beer.brewery = brewery.name AND alcperc > 3.0 "
            "GROUP BY country"
        )
        expr = sql_to_algebra(query, db.schema)
        env = dict(db.as_env())
        catalog = StatisticsCatalog.from_env(env)
        optimized = optimize(expr, catalog)
        assert execute(optimized, env) == evaluate(expr, env)

    def test_three_frontends_agree(self, db):
        """The same query through SQL, XRA, and the Python API."""
        env = dict(db.as_env())

        sql_result = evaluate(
            sql_to_algebra(
                "SELECT name FROM beer WHERE alcperc > 8.0", db.schema
            ),
            env,
        )

        xra = XRAInterpreter(db, use_optimizer=False)
        xra_result = xra.run("? proj[name](sel[alcperc > 8.0](beer));").outputs[0]

        session = Session(db, use_optimizer=False)
        api_result = session.query(
            session.relation("beer").select("alcperc > 8.0").project(["name"])
        )

        assert sql_result == xra_result == api_result


class TestInventoryScenario:
    """A small warehouse: constraints + transactions + aggregation."""

    SCHEMA_ITEM = RelationSchema.of("item", sku=STRING, qty=INTEGER, price=REAL)
    SCHEMA_ORDER = RelationSchema.of("orders", sku=STRING, n=INTEGER)

    @pytest.fixture
    def session(self):
        db = Database()
        db.create_relation(
            self.SCHEMA_ITEM,
            Relation(
                self.SCHEMA_ITEM,
                [("bolt", 100, 0.10), ("nut", 250, 0.05), ("gear", 8, 12.5)],
            ),
        )
        db.create_relation(self.SCHEMA_ORDER)
        return Session(
            db,
            constraints=[
                KeyConstraint("item_pk", "item", ["sku"]),
                DomainConstraint("qty_nonneg", "item", "qty >= 0"),
                ReferentialConstraint(
                    "order_fk", "orders", ["sku"], "item", ["sku"]
                ),
            ],
        )

    def test_order_fulfilment_commit(self, session):
        db = session.database
        with session.transaction() as txn:
            item = txn.relation("item")
            txn.update("item", item.select("sku = 'bolt'"), ["%1", "%2 - 40", "%3"])
            from repro.algebra import LiteralRelation

            txn.insert(
                "orders",
                LiteralRelation(Relation(self.SCHEMA_ORDER, [("bolt", 40)])),
            )
        assert db["item"].multiplicity(("bolt", 60, 0.10)) == 1
        assert db["orders"].multiplicity(("bolt", 40)) == 1

    def test_overdraw_rolls_back_both_legs(self, session):
        db = session.database
        from repro.algebra import LiteralRelation
        from repro.errors import ConstraintViolationError

        with pytest.raises(ConstraintViolationError):
            with session.transaction() as txn:
                item = txn.relation("item")
                txn.update(
                    "item", item.select("sku = 'gear'"), ["%1", "%2 - 50", "%3"]
                )
                txn.insert(
                    "orders",
                    LiteralRelation(Relation(self.SCHEMA_ORDER, [("gear", 50)])),
                )
        # qty went negative -> commit-time constraint aborted everything.
        assert db["item"].multiplicity(("gear", 8, 12.5)) == 1
        assert not db["orders"]

    def test_orphan_order_rejected(self, session):
        from repro.algebra import LiteralRelation

        result = session.insert(
            "orders",
            LiteralRelation(Relation(self.SCHEMA_ORDER, [("ghost", 1)])),
        )
        assert not result.committed

    def test_value_of_stock_query(self, session):
        # Total stock value: extended projection feeding a whole-bag SUM.
        item = session.relation("item")
        value = session.query(
            item.extended_project(["qty * price"], names=["value"]).group_by(
                None, "SUM", "value"
            )
        )
        ((total,),) = [row for row, _count in value.pairs()]
        assert total == pytest.approx(100 * 0.10 + 250 * 0.05 + 8 * 12.5)


class TestSqlDmlThroughSessions:
    def test_statement_batch_is_atomic(self):
        db = BeerWorkload(beers=100, breweries=10, seed=6).database()
        session = Session(db)
        before = len(db["beer"])
        statements = [
            sql_to_statement("DELETE FROM beer WHERE alcperc > 5.0", db.schema),
            sql_to_statement(
                "INSERT INTO beer VALUES ('Replacement', 'Brouwerij-0001', 5.0)",
                db.schema,
            ),
        ]
        result = session.run(statements)
        assert result.committed
        assert db["beer"].multiplicity(
            ("Replacement", "Brouwerij-0001", 5.0)
        ) == 1
        assert len(db["beer"]) < before + 1

    def test_logical_time_audit_trail(self):
        db = BeerWorkload(beers=50, breweries=5, seed=7).database()
        session = Session(db)
        for _ in range(3):
            session.run(
                [
                    sql_to_statement(
                        "UPDATE beer SET alcperc = alcperc * 1.01", db.schema
                    )
                ]
            )
        assert db.logical_time == 3
        times = [(t.time_before, t.time_after) for t in db.transitions]
        assert times == [(0, 1), (1, 2), (2, 3)]
