"""The lint fixture corpus: every bad script yields its exact codes.

``tests/fixtures/lint/`` holds one deliberately-wrong XRA script per
diagnostic family.  Each is linted through the *standalone* linter
(``tools/xralint.py --format json``) as a real subprocess, so these
tests pin down the whole chain: file handling, the JSON output shape,
exit codes, and — most importantly — the exact diagnostic codes, which
are a public, stable interface.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
XRALINT = REPO_ROOT / "tools" / "xralint.py"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

#: fixture file -> exact diagnostic codes, in report order.
EXPECTED = {
    "avg_over_unique.xra": ["XRA010"],
    "redundant_unique.xra": ["XRA011", "XRA011"],
    "distinct_union.xra": ["XRA012"],
    "constant_selection.xra": ["XRA013", "XRA014", "XRA013"],
    "unconstrained_product.xra": ["XRA015"],
    "dead_columns.xra": ["XRA016"],
    "division_by_zero.xra": ["XRA017"],
    "bad_reference.xra": ["XRA001"],
    "type_error.xra": ["XRA002"],
    "schema_mismatch.xra": ["XRA003"],
    "unknown_relation.xra": ["XRA004", "XRA004"],
    "parse_error.xra": ["XRA000"],
}


def run_xralint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(XRALINT), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def test_corpus_is_complete() -> None:
    """Every fixture on disk is in the manifest and vice versa."""
    on_disk = {path.name for path in FIXTURES.glob("*.xra")}
    assert on_disk == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fixture_codes(name: str) -> None:
    result = run_xralint("--format", "json", str(FIXTURES / name))
    assert result.returncode == 1, result.stderr
    payload = json.loads(result.stdout)
    codes = [entry["code"] for entry in payload["diagnostics"]]
    assert codes == EXPECTED[name]
    for entry in payload["diagnostics"]:
        assert entry["file"].endswith(name)
        assert entry["line"] >= 1
        assert entry["severity"] in ("error", "warning", "info")
        assert entry["message"]


def test_example_32_hazard_is_reported() -> None:
    """The paper's Example 3.2 projection-under-AVG hazard, by name."""
    result = run_xralint(str(FIXTURES / "avg_over_unique.xra"))
    assert result.returncode == 1
    assert "XRA010" in result.stdout
    assert "Example 3.2" in result.stdout
    assert "AVG" in result.stdout


def test_whole_corpus_in_one_invocation() -> None:
    paths = [str(FIXTURES / name) for name in sorted(EXPECTED)]
    result = run_xralint("--format", "json", *paths)
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["files"] == len(EXPECTED)
    expected_total = sum(len(codes) for codes in EXPECTED.values())
    assert len(payload["diagnostics"]) == expected_total
    assert sum(payload["counts"].values()) == expected_total


def test_clean_file_exits_zero(tmp_path: Path) -> None:
    clean = tmp_path / "clean.xra"
    clean.write_text(
        "create t (a: int, b: string);\n"
        "? sel[%1 > 0](t);\n",
        encoding="utf-8",
    )
    result = run_xralint(str(clean))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_unknown_suffix_exits_two(tmp_path: Path) -> None:
    odd = tmp_path / "notascript.txt"
    odd.write_text("hello", encoding="utf-8")
    result = run_xralint(str(odd))
    assert result.returncode == 2
    assert "unsupported suffix" in result.stderr


def test_sql_linting_with_schema(tmp_path: Path) -> None:
    schema = tmp_path / "schema.xra"
    schema.write_text(
        "create beer (name: string, brewery: string, alcperc: real);\n",
        encoding="utf-8",
    )
    sql = tmp_path / "queries.sql"
    sql.write_text(
        "SELECT name FROM beer WHERE alcperc > 5.0;\n"
        "SELECT nope FROM beer;\n",
        encoding="utf-8",
    )
    result = run_xralint(
        "--format", "json", "--schema", str(schema), str(sql)
    )
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    codes = [entry["code"] for entry in payload["diagnostics"]]
    assert codes == ["XRA001"]

    # Without --schema, SQL files are a usage error.
    bare = run_xralint(str(sql))
    assert bare.returncode == 2


def test_markdown_snippets_are_linted(tmp_path: Path) -> None:
    doc = tmp_path / "guide.md"
    doc.write_text(
        "# Guide\n"
        "\n"
        "```xra\n"
        "create t (a: int);\n"
        "? unique(unique(t));\n"
        "```\n",
        encoding="utf-8",
    )
    result = run_xralint("--format", "json", str(doc))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    (entry,) = payload["diagnostics"]
    assert entry["code"] == "XRA011"
    assert entry["line"] == 5  # real line in the .md file
