"""Unit tests for algebra AST construction, typing, and tree protocol."""

import pytest

from repro.aggregates import AVG, CNT
from repro.algebra import (
    Difference,
    ExtendedProject,
    GroupBy,
    Intersect,
    Join,
    LiteralRelation,
    Product,
    RelationRef,
    Select,
    Union,
    Unique,
    render,
    render_tree,
)
from repro.domains import INTEGER, REAL, STRING
from repro.errors import (
    ArityError,
    ExpressionTypeError,
    SchemaMismatchError,
)
from repro.relation import Relation
from repro.schema import RelationSchema

BEER = RelationSchema.of("beer", name=STRING, brewery=STRING, alcperc=REAL)
BREWERY = RelationSchema.of("brewery", name=STRING, city=STRING, country=STRING)


def beer_ref():
    return RelationRef("beer", BEER)


def brewery_ref():
    return RelationRef("brewery", BREWERY)


class TestLeaves:
    def test_relation_ref_schema(self):
        ref = beer_ref()
        assert ref.schema.name == "beer"
        assert ref.schema.degree == 3
        assert ref.children() == ()

    def test_literal_relation(self):
        relation = Relation(BEER, [("Pils", "Grolsch", 4.5)])
        leaf = LiteralRelation(relation)
        assert leaf.schema is relation.schema

    def test_leaves_reject_children(self):
        with pytest.raises(ValueError):
            beer_ref().with_children([beer_ref()])


class TestStaticChecks:
    def test_union_needs_compatible_schemas(self):
        with pytest.raises(SchemaMismatchError):
            Union(beer_ref(), brewery_ref().project(["name"]))

    def test_union_of_compatible_different_names_ok(self):
        # Compatibility is by domains, not names (Section 2's remark).
        other = RelationRef(
            "other", RelationSchema.of("other", x=STRING, y=STRING, z=REAL)
        )
        union = Union(beer_ref(), other)
        # Result takes the left operand's attribute names.
        assert union.schema.names() == ("name", "brewery", "alcperc")

    def test_union_checks_domains_not_just_degree(self):
        # beer is (string, string, real), brewery (string, string, string).
        with pytest.raises(SchemaMismatchError):
            Union(beer_ref(), brewery_ref())

    def test_difference_needs_compatible_schemas(self):
        with pytest.raises(SchemaMismatchError):
            Difference(beer_ref(), brewery_ref())

    def test_intersect_needs_compatible_schemas(self):
        with pytest.raises(SchemaMismatchError):
            Intersect(beer_ref(), brewery_ref())

    def test_select_condition_must_be_boolean(self):
        with pytest.raises(ExpressionTypeError):
            Select("alcperc * 2", beer_ref())

    def test_select_condition_must_typecheck(self):
        with pytest.raises(ExpressionTypeError):
            Select("name > 1", beer_ref())

    def test_join_condition_over_combined_schema(self):
        join = Join(beer_ref(), brewery_ref(), "%2 = %4")
        assert join.schema.degree == 6

    def test_join_condition_out_of_range(self):
        from repro.errors import AttributeResolutionError

        with pytest.raises(AttributeResolutionError):
            Join(beer_ref(), brewery_ref(), "%7 = %1")

    def test_extended_project_needs_expressions(self):
        with pytest.raises(ArityError):
            ExtendedProject([], beer_ref())

    def test_extended_project_names_arity(self):
        with pytest.raises(ArityError):
            ExtendedProject(["%1"], beer_ref(), names=["a", "b"])

    def test_groupby_duplicate_attrs_rejected(self):
        with pytest.raises(ValueError):
            GroupBy(["name", "%1"], CNT, None, beer_ref())

    def test_groupby_aggregate_typecheck(self):
        with pytest.raises(ExpressionTypeError):
            GroupBy(["name"], AVG, "brewery", beer_ref())  # AVG of a string


class TestSchemaInference:
    def test_product_schema_concatenates(self):
        product = Product(beer_ref(), brewery_ref())
        assert product.schema.degree == 6
        assert product.schema.names()[:3] == ("name", "brewery", "alcperc")

    def test_project_schema(self):
        project = beer_ref().project(["alcperc", "name"])
        assert project.schema.names() == ("alcperc", "name")

    def test_extended_project_schema_and_names(self):
        node = ExtendedProject(["%3 * 1.1", "%1"], beer_ref())
        assert node.schema.attribute(1).domain == REAL
        assert node.schema.attribute(1).name is None  # computed: anonymous
        assert node.schema.attribute(2).name == "name"  # plain ref keeps name

    def test_extended_project_explicit_names(self):
        node = ExtendedProject(["%3 * 1.1"], beer_ref(), names=["boosted"])
        assert node.schema.attribute(1).name == "boosted"

    def test_groupby_schema(self):
        node = GroupBy(["brewery"], AVG, "alcperc", beer_ref())
        assert node.schema.names() == ("brewery", "avg_alcperc")
        assert node.schema.attribute(2).domain == REAL

    def test_groupby_empty_alpha_schema(self):
        node = GroupBy(None, CNT, None, beer_ref())
        assert node.schema.degree == 1
        assert node.schema.attribute(1).domain == INTEGER

    def test_unique_preserves_schema(self):
        assert Unique(beer_ref()).schema == beer_ref().schema

    def test_structure_preserving_check(self):
        good = ExtendedProject(["%1", "%2", "%3 * 1.1"], beer_ref())
        bad = ExtendedProject(["%1"], beer_ref())
        assert good.is_structure_preserving()
        assert not bad.is_structure_preserving()


class TestTreeProtocol:
    def test_children_and_rebuild(self):
        expr = Select("alcperc > 5.0", beer_ref())
        (child,) = expr.children()
        rebuilt = expr.with_children([child])
        assert rebuilt == expr

    def test_node_count_and_depth(self):
        expr = beer_ref().select("alcperc > 5.0").project(["name"])
        assert expr.node_count() == 3
        assert expr.depth() == 3

    def test_structural_equality(self):
        first = beer_ref().select("alcperc > 5.0")
        second = beer_ref().select("alcperc > 5.0")
        third = beer_ref().select("alcperc > 6.0")
        assert first == second
        assert hash(first) == hash(second)
        assert first != third

    def test_operator_sugar(self):
        a, b = beer_ref(), beer_ref()
        assert isinstance(a + b, Union)
        assert isinstance(a - b, Difference)
        assert isinstance(a * brewery_ref(), Product)
        assert isinstance(a & b, Intersect)

    def test_where_alias(self):
        assert beer_ref().where("alcperc > 1.0") == beer_ref().select("alcperc > 1.0")


class TestDerivedForms:
    def test_intersect_derived_form_shape(self):
        node = Intersect(beer_ref(), beer_ref())
        derived = node.derived_form()
        assert isinstance(derived, Difference)
        assert isinstance(derived.right, Difference)

    def test_join_derived_form_shape(self):
        node = Join(beer_ref(), brewery_ref(), "%2 = %4")
        derived = node.derived_form()
        assert isinstance(derived, Select)
        assert isinstance(derived.operand, Product)
        assert derived.condition == node.condition


class TestPretty:
    def test_render_uses_paper_symbols(self):
        expr = (
            beer_ref()
            .join(brewery_ref(), "%2 = %4")
            .select("%6 = 'Netherlands'")
            .project(["%1"])
        )
        text = render(expr)
        assert "σ" in text and "π" in text and "⋈" in text

    def test_render_delta_gamma(self):
        expr = GroupBy(["brewery"], AVG, "alcperc", Unique(beer_ref()))
        text = render(expr)
        assert "δ" in text and "Γ" in text and "AVG" in text

    def test_render_tree_indents(self):
        expr = beer_ref().select("alcperc > 5.0").project(["name"])
        lines = render_tree(expr).splitlines()
        assert lines[0].startswith("project")
        assert lines[1].startswith("  select")
        assert lines[2].strip() == "beer"

    def test_repr_is_render(self):
        expr = Unique(beer_ref())
        assert repr(expr) == render(expr)
