"""Unit tests for scalar-expression rewriting (the optimizer's toolbox)."""

import pytest

from repro.domains import INTEGER
from repro.expressions import (
    AttrRef,
    conjoin,
    map_attr_refs,
    parse_expression,
    rebase,
    resolve_refs,
    shift_refs,
    split_conjuncts,
)
from repro.schema import RelationSchema

SCHEMA = RelationSchema.of("t", a=INTEGER, b=INTEGER, c=INTEGER, d=INTEGER)


class TestResolveRefs:
    def test_names_become_positions(self):
        expr = resolve_refs(parse_expression("b + d > 1"), SCHEMA)
        assert repr(expr) == "((%2 + %4) > 1)"

    def test_idempotent_on_positions(self):
        expr = parse_expression("%1 = %2")
        assert resolve_refs(expr, SCHEMA) == expr


class TestShiftRefs:
    def test_shift(self):
        expr = resolve_refs(parse_expression("a = d"), SCHEMA)
        shifted = shift_refs(expr, 2)
        assert repr(shifted) == "(%3 = %6)"

    def test_negative_shift(self):
        expr = parse_expression("%3 = %4")
        assert repr(shift_refs(expr, -2)) == "(%1 = %2)"

    def test_named_ref_rejected(self):
        with pytest.raises(ValueError):
            shift_refs(parse_expression("a = 1"), 1)


class TestRebase:
    def test_within_window(self):
        # Condition on columns 3..4 rebased onto a 2-column operand.
        expr = parse_expression("%3 = %4")
        rebased = rebase(expr, SCHEMA, 3, 4)
        assert repr(rebased) == "(%1 = %2)"

    def test_outside_window_returns_none(self):
        expr = parse_expression("%1 = %3")
        assert rebase(expr, SCHEMA, 3, 4) is None

    def test_constant_fits_any_window(self):
        expr = parse_expression("1 = 1")
        assert rebase(expr, SCHEMA, 3, 4) is not None

    def test_named_refs_resolved_first(self):
        expr = parse_expression("c > 0")
        rebased = rebase(expr, SCHEMA, 3, 4)
        assert repr(rebased) == "(%1 > 0)"


class TestConjuncts:
    def test_split_nested(self):
        expr = parse_expression("a = 1 and b = 2 and c = 3")
        parts = split_conjuncts(expr)
        assert [repr(part) for part in parts] == ["(a = 1)", "(b = 2)", "(c = 3)"]

    def test_split_non_conjunction(self):
        expr = parse_expression("a = 1 or b = 2")
        assert split_conjuncts(expr) == [expr]

    def test_conjoin_round_trip(self):
        parts = [parse_expression("a = 1"), parse_expression("b = 2")]
        rebuilt = conjoin(parts)
        assert split_conjuncts(rebuilt) == parts

    def test_conjoin_empty_rejected(self):
        with pytest.raises(ValueError):
            conjoin([])

    def test_split_respects_or_boundaries(self):
        expr = parse_expression("(a = 1 or b = 2) and c = 3")
        parts = split_conjuncts(expr)
        assert len(parts) == 2


class TestMapAttrRefs:
    def test_transform_applied_everywhere(self):
        expr = parse_expression("a + b > a * 2")
        counted = []

        def record(ref: AttrRef) -> AttrRef:
            counted.append(ref.ref)
            return ref

        map_attr_refs(expr, record)
        assert sorted(counted) == ["a", "a", "b"]

    def test_rebuilds_evaluate_identically(self):
        expr = parse_expression("not (a = 1) and -b < c / 2")
        rebuilt = map_attr_refs(expr, lambda ref: ref)
        row = (1, -5, 10, 0)
        assert rebuilt.bind(SCHEMA)(row) == expr.bind(SCHEMA)(row)
