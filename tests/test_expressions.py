"""Unit tests for the scalar expression language (AST, parser, typing)."""

import pytest

from repro.domains import BOOLEAN, INTEGER, MONEY, REAL, STRING
from repro.errors import (
    DivisionByZeroError,
    ExpressionParseError,
    ExpressionTypeError,
)
from repro.expressions import (
    BoolOp,
    Compare,
    Neg,
    Not,
    col,
    lit,
    parse_expression,
    tokenize,
)
from repro.schema import RelationSchema

SCHEMA = RelationSchema.of("beer", name=STRING, brewery=STRING, alcperc=REAL)
ROW = ("Pils", "Guineken", 4.5)


class TestConstants:
    def test_infer_types(self):
        assert lit(1).domain == INTEGER
        assert lit(1.5).domain == REAL
        assert lit(True).domain == BOOLEAN
        assert lit("x").domain == STRING

    def test_infer_decimal(self):
        from decimal import Decimal

        assert lit(Decimal("1.50")).domain == MONEY

    def test_infer_unknown_rejected(self):
        with pytest.raises(ExpressionTypeError):
            lit(object())

    def test_bind_ignores_row(self):
        assert lit(42).bind(SCHEMA)(ROW) == 42

    def test_no_references(self):
        assert lit(1).references(SCHEMA) == frozenset()


class TestAttrRef:
    def test_positional_and_named(self):
        assert col(3).bind(SCHEMA)(ROW) == 4.5
        assert col("brewery").bind(SCHEMA)(ROW) == "Guineken"
        assert col("%1").bind(SCHEMA)(ROW) == "Pils"

    def test_infer_domain(self):
        assert col("alcperc").infer_domain(SCHEMA) == REAL

    def test_references(self):
        assert col("alcperc").references(SCHEMA) == frozenset({3})


class TestArithmetic:
    def test_int_arithmetic_stays_int(self):
        schema = RelationSchema.of("t", a=INTEGER, b=INTEGER)
        expr = col("a") + col("b")
        assert expr.infer_domain(schema) == INTEGER
        assert expr.bind(schema)((2, 3)) == 5

    def test_division_promotes_to_real(self):
        schema = RelationSchema.of("t", a=INTEGER, b=INTEGER)
        expr = col("a") / col("b")
        assert expr.infer_domain(schema) == REAL
        assert expr.bind(schema)((7, 2)) == 3.5

    def test_real_contagion(self):
        expr = col("alcperc") * lit(2)
        assert expr.infer_domain(SCHEMA) == REAL
        assert expr.bind(SCHEMA)(ROW) == 9.0

    def test_money_arithmetic(self):
        from decimal import Decimal

        schema = RelationSchema.of("t", price=MONEY)
        expr = col("price") * lit(2)
        assert expr.infer_domain(schema) == MONEY
        assert expr.bind(schema)((Decimal("1.25"),)) == Decimal("2.50")

    def test_money_ratio_is_real(self):
        schema = RelationSchema.of("t", a=MONEY, b=MONEY)
        assert (col("a") / col("b")).infer_domain(schema) == REAL

    def test_string_arithmetic_rejected(self):
        with pytest.raises(ExpressionTypeError):
            (col("name") + lit(1)).infer_domain(SCHEMA)

    def test_division_by_zero(self):
        schema = RelationSchema.of("t", a=INTEGER)
        function = (lit(1) / col("a")).bind(schema)
        with pytest.raises(DivisionByZeroError):
            function((0,))

    def test_negation(self):
        expr = -col("alcperc")
        assert expr.bind(SCHEMA)(ROW) == -4.5

    def test_negation_needs_numeric(self):
        with pytest.raises(ExpressionTypeError):
            Neg(col("name")).infer_domain(SCHEMA)


class TestComparison:
    def test_all_operators(self):
        schema = RelationSchema.of("t", a=INTEGER)
        cases = {
            "=": (5,),
            "<>": (4,),
            "<": (4,),
            "<=": (5,),
            ">": (6,),
            ">=": (5,),
        }
        for op, row in cases.items():
            assert Compare(op, col("a"), lit(5)).bind(schema)(row) is True

    def test_cross_numeric_comparison(self):
        assert Compare("=", col("alcperc"), lit(4)).infer_domain(SCHEMA) == BOOLEAN

    def test_incomparable_domains(self):
        with pytest.raises(ExpressionTypeError):
            Compare("=", col("name"), lit(1)).infer_domain(SCHEMA)

    def test_string_ordering_allowed(self):
        expr = Compare("<", col("name"), lit("Q"))
        assert expr.bind(SCHEMA)(ROW) is True

    def test_references_union(self):
        expr = Compare("=", col(1), col(2))
        assert expr.references(SCHEMA) == frozenset({1, 2})


class TestBooleans:
    def test_and_or_not(self):
        schema = RelationSchema.of("t", a=INTEGER)
        true = Compare("=", col("a"), lit(1))
        false = Compare("=", col("a"), lit(2))
        assert BoolOp("and", true, true).bind(schema)((1,)) is True
        assert BoolOp("and", true, false).bind(schema)((1,)) is False
        assert BoolOp("or", false, true).bind(schema)((1,)) is True
        assert Not(false).bind(schema)((1,)) is True

    def test_non_boolean_operand_rejected(self):
        with pytest.raises(ExpressionTypeError):
            BoolOp("and", lit(1), lit(True)).infer_domain(SCHEMA)
        with pytest.raises(ExpressionTypeError):
            Not(lit(1)).infer_domain(SCHEMA)

    def test_conjuncts_flatten(self):
        a = Compare("=", col(1), lit("x"))
        b = Compare("=", col(2), lit("y"))
        c = Compare(">", col(3), lit(1.0))
        expr = BoolOp("and", BoolOp("and", a, b), c)
        assert expr.conjuncts() == (a, b, c)


class TestParser:
    def test_paper_update_expression(self):
        expr = parse_expression("alcperc * 1.1")
        assert expr.bind(SCHEMA)(ROW) == pytest.approx(4.95)

    def test_paper_selection_condition(self):
        expr = parse_expression("brewery = 'Guineken'")
        assert expr.bind(SCHEMA)(ROW) is True

    def test_positional_refs(self):
        assert parse_expression("%3 > 4.0").bind(SCHEMA)(ROW) is True

    def test_precedence_mul_over_add(self):
        schema = RelationSchema.of("t", a=INTEGER)
        assert parse_expression("1 + 2 * 3").bind(schema)((0,)) == 7

    def test_precedence_and_over_or(self):
        schema = RelationSchema.of("t", a=INTEGER)
        expr = parse_expression("a = 1 or a = 2 and a = 3")
        assert expr.bind(schema)((1,)) is True  # (a=1) or ((a=2) and (a=3))

    def test_parentheses(self):
        schema = RelationSchema.of("t", a=INTEGER)
        assert parse_expression("(1 + 2) * 3").bind(schema)((0,)) == 9

    def test_string_escape(self):
        expr = parse_expression("name = 'O''Hara'")
        schema = RelationSchema.of("t", name=STRING)
        assert expr.bind(schema)(("O'Hara",)) is True

    def test_not_keyword(self):
        expr = parse_expression("not alcperc > 5.0")
        assert expr.bind(SCHEMA)(ROW) is True

    def test_qualified_name(self):
        expr = parse_expression("beer.alcperc > 4.0")
        assert expr.bind(SCHEMA)(ROW) is True

    def test_booleans_and_unary_minus(self):
        schema = RelationSchema.of("t", flag=BOOLEAN, v=INTEGER)
        assert parse_expression("flag = true").bind(schema)((True, 0)) is True
        assert parse_expression("-v < 0").bind(schema)((True, 3)) is True

    def test_neq_spellings(self):
        schema = RelationSchema.of("t", a=INTEGER)
        assert parse_expression("a <> 1").bind(schema)((2,))
        assert parse_expression("a != 1").bind(schema)((2,))

    def test_scientific_notation(self):
        schema = RelationSchema.of("t", a=REAL)
        assert parse_expression("a < 1e3").bind(schema)((500.0,)) is True

    def test_error_unknown_char(self):
        with pytest.raises(ExpressionParseError):
            parse_expression("a # b")

    def test_error_trailing_input(self):
        with pytest.raises(ExpressionParseError, match="trailing"):
            parse_expression("1 + 2 3")

    def test_error_unbalanced_paren(self):
        with pytest.raises(ExpressionParseError):
            parse_expression("(1 + 2")

    def test_error_empty(self):
        with pytest.raises(ExpressionParseError):
            parse_expression("")

    def test_tokenize_kinds(self):
        kinds = [token.kind for token in tokenize("%1 = 'x' and 2.5")]
        assert kinds == ["attr", "op", "string", "keyword", "real", "eof"]


class TestStructuralEquality:
    def test_parse_stable(self):
        assert parse_expression("a + 1 = 2") == parse_expression("a + 1 = 2")
        assert parse_expression("a + 1") != parse_expression("a + 2")

    def test_hashable(self):
        expressions = {parse_expression("x > 1"), parse_expression("x > 1")}
        assert len(expressions) == 1

    def test_repr_round_trips_through_parser(self):
        expr = parse_expression("(a + 1) * 2 > 3 and not b = 'x'")
        again = parse_expression(repr(expr))
        assert again == expr
