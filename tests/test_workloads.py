"""Tests for the workload generators."""

import pytest

from repro.workloads import (
    BeerWorkload,
    int_schema,
    join_chain_relations,
    random_int_bag,
    random_int_relation,
    tiny_beer_database,
    zipf_relation,
)


class TestTinyBeerDatabase:
    def test_contents_support_example_31(self):
        db = tiny_beer_database()
        # Two Dutch breweries brew a beer called "Pils" — required for the
        # duplicate in Example 3.1.
        dutch_breweries = {
            row[0]
            for row in db["brewery"].rows_sorted()
            if row[2] == "Netherlands"
        }
        pils_brewers = {
            row[1] for row in db["beer"].rows_sorted() if row[0] == "Pils"
        }
        assert len(pils_brewers & dutch_breweries) == 2

    def test_fresh_instance_each_call(self):
        first = tiny_beer_database()
        second = tiny_beer_database()
        first.set("beer", first["beer"].difference(first["beer"]))
        assert len(second["beer"]) == 6


class TestBeerWorkload:
    def test_deterministic(self):
        first = BeerWorkload(beers=100, breweries=10, seed=7).relations()
        second = BeerWorkload(beers=100, breweries=10, seed=7).relations()
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_seed_changes_data(self):
        first = BeerWorkload(beers=100, seed=1).relations()[0]
        second = BeerWorkload(beers=100, seed=2).relations()[0]
        assert first != second

    def test_cardinalities(self):
        beer, brewery = BeerWorkload(beers=500, breweries=25).relations()
        assert len(beer) == 500
        assert len(brewery) == 25

    def test_duplicates_present(self):
        beer, _brewery = BeerWorkload(
            beers=500, duplicate_fraction=0.5, name_pool=5
        ).relations()
        assert beer.distinct_count < len(beer)

    def test_netherlands_share_respected(self):
        _beer, brewery = BeerWorkload(
            breweries=200, netherlands_share=1.0
        ).relations()
        assert all(row[2] == "Netherlands" for row in brewery.rows_sorted())

    def test_database_helper(self):
        db = BeerWorkload(beers=50, breweries=5).database()
        assert set(db.names()) == {"beer", "brewery"}

    def test_foreign_keys_resolve(self):
        beer, brewery = BeerWorkload(beers=200, breweries=20).relations()
        brewery_names = {row[0] for row in brewery.rows_sorted()}
        assert all(row[1] in brewery_names for row in beer.rows_sorted())


class TestSyntheticGenerators:
    def test_random_relation_shape(self):
        relation = random_int_relation(100, degree=3, value_space=4, seed=1)
        assert len(relation) == 100
        assert relation.schema.degree == 3

    def test_small_value_space_forces_duplicates(self):
        relation = random_int_relation(100, degree=1, value_space=2, seed=1)
        assert relation.distinct_count <= 2

    def test_random_bag(self):
        bag = random_int_bag(50, value_space=5, seed=2)
        assert len(bag) == 50

    def test_zipf_skew(self):
        relation = zipf_relation(2000, distinct=50, skew=1.5, seed=3)
        counts = sorted(
            (count for _row, count in relation.pairs()), reverse=True
        )
        # The hottest tuple dominates the coldest by a wide margin.
        assert counts[0] > 10 * counts[-1]

    def test_zipf_deterministic(self):
        assert zipf_relation(100, seed=4) == zipf_relation(100, seed=4)

    def test_join_chain_shapes(self):
        relations = join_chain_relations(3, [10, 20, 30], [5, 5, 5, 5], seed=5)
        assert [len(relation) for relation in relations] == [10, 20, 30]
        assert relations[0].schema.names() == ("k1", "k2")
        assert relations[2].schema.names() == ("k3", "k4")

    def test_join_chain_validates_arities(self):
        with pytest.raises(ValueError):
            join_chain_relations(2, [10], [5, 5, 5])

    def test_int_schema_names(self):
        schema = int_schema(2, name="x")
        assert schema.name == "x"
        assert schema.names() == ("c1", "c2")
