"""Property-based tests: the algebraic laws of bag multiplicity arithmetic.

These laws are what make the paper's Theorems 3.1-3.3 true at the
container level; hypothesis explores the multiplicity space far beyond
the hand-written cases.
"""

from hypothesis import given

from repro.multiset import Multiset
from tests.conftest import int_bags


class TestUnionLaws:
    @given(int_bags, int_bags)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(int_bags, int_bags, int_bags)
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(int_bags)
    def test_union_identity(self, a):
        assert a.union(Multiset.empty()) == a

    @given(int_bags, int_bags)
    def test_union_cardinality_adds(self, a, b):
        assert len(a.union(b)) == len(a) + len(b)


class TestIntersectionLaws:
    @given(int_bags, int_bags)
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(int_bags, int_bags, int_bags)
    def test_intersection_associative(self, a, b, c):
        assert a.intersection(b).intersection(c) == a.intersection(
            b.intersection(c)
        )

    @given(int_bags)
    def test_intersection_idempotent(self, a):
        assert a.intersection(a) == a

    @given(int_bags, int_bags)
    def test_intersection_is_lower_bound(self, a, b):
        meet = a.intersection(b)
        assert meet <= a
        assert meet <= b


class TestMonusLaws:
    @given(int_bags)
    def test_difference_self_is_empty(self, a):
        assert not a.difference(a)

    @given(int_bags)
    def test_difference_empty_identity(self, a):
        assert a.difference(Multiset.empty()) == a

    @given(int_bags, int_bags)
    def test_theorem_3_1_min_via_monus(self, a, b):
        """max(0, A(x) − max(0, A(x) − B(x))) = min(A(x), B(x)) — the proof
        obligation inside Theorem 3.1, at full container level."""
        assert a.difference(a.difference(b)) == a.intersection(b)

    @given(int_bags, int_bags)
    def test_monus_then_union_overshoots_to_max(self, a, b):
        """(A − B) ⊎ B has multiplicity max(A(x), B(x))."""
        assert a.difference(b).union(b) == a.max_union(b)

    @given(int_bags, int_bags, int_bags)
    def test_monus_antidistribution(self, a, b, c):
        """(A − B) − C = A − (B ⊎ C)."""
        assert a.difference(b).difference(c) == a.difference(b.union(c))


class TestMaxUnionLaws:
    @given(int_bags, int_bags)
    def test_max_union_commutative(self, a, b):
        assert a.max_union(b) == b.max_union(a)

    @given(int_bags, int_bags, int_bags)
    def test_max_union_associative(self, a, b, c):
        assert a.max_union(b).max_union(c) == a.max_union(b.max_union(c))

    @given(int_bags)
    def test_max_union_idempotent(self, a):
        assert a.max_union(a) == a

    @given(int_bags, int_bags, int_bags)
    def test_min_max_absorption(self, a, b, c):
        """min/max lattice absorption: A ∩ (A ∪max B) = A."""
        assert a.intersection(a.max_union(b)) == a


class TestDistinctLaws:
    @given(int_bags)
    def test_distinct_idempotent(self, a):
        assert a.distinct().distinct() == a.distinct()

    @given(int_bags)
    def test_distinct_preserves_support(self, a):
        assert a.distinct().support() == a.support()

    @given(int_bags, int_bags)
    def test_delta_union_max_identity(self, a, b):
        """δ(A ⊎ B) = δA ∪max δB — the valid form of the δ/⊎ relation."""
        assert a.union(b).distinct() == a.distinct().max_union(b.distinct())

    @given(int_bags, int_bags)
    def test_delta_does_not_distribute_over_union(self, a, b):
        """δ(A ⊎ B) = δA ⊎ δB iff supports are disjoint — the paper's
        Section 3.3 warning, stated precisely."""
        lhs = a.union(b).distinct()
        rhs = a.distinct().union(b.distinct())
        disjoint = not (a.support() & b.support())
        assert (lhs == rhs) == disjoint

    @given(int_bags, int_bags)
    def test_delta_union_double_delta(self, a, b):
        """δ(A ⊎ B) = δ(δA ⊎ δB) always holds."""
        assert a.union(b).distinct() == a.distinct().union(b.distinct()).distinct()


class TestScaleLaws:
    @given(int_bags)
    def test_scale_one_identity(self, a):
        assert a.scale(1) == a

    @given(int_bags, int_bags)
    def test_scale_distributes_over_union(self, a, b):
        assert a.union(b).scale(3) == a.scale(3).union(b.scale(3))

    @given(int_bags)
    def test_scale_composes(self, a):
        assert a.scale(2).scale(3) == a.scale(6)


class TestMapFilterLaws:
    @given(int_bags)
    def test_filter_true_is_identity(self, a):
        assert a.filter(lambda value: True) == a

    @given(int_bags)
    def test_filter_false_is_empty(self, a):
        assert not a.filter(lambda value: False)

    @given(int_bags)
    def test_map_preserves_cardinality(self, a):
        """Bag projection never changes cardinality (no dedup)."""
        assert len(a.map(lambda value: value % 2)) == len(a)

    @given(int_bags, int_bags)
    def test_map_distributes_over_union(self, a, b):
        image = lambda value: value % 3
        assert a.union(b).map(image) == a.map(image).union(b.map(image))

    @given(int_bags, int_bags)
    def test_filter_distributes_over_union(self, a, b):
        keep = lambda value: value % 2 == 0
        assert a.union(b).filter(keep) == a.filter(keep).union(b.filter(keep))

    @given(int_bags, int_bags)
    def test_product_cardinality_multiplies(self, a, b):
        product = a.product(b, lambda left, right: (left, right))
        assert len(product) == len(a) * len(b)


class TestOrderingLaws:
    @given(int_bags, int_bags)
    def test_submultiset_antisymmetric(self, a, b):
        if a <= b and b <= a:
            assert a == b

    @given(int_bags, int_bags, int_bags)
    def test_submultiset_transitive(self, a, b, c):
        if a <= b and b <= c:
            assert a <= c

    @given(int_bags, int_bags)
    def test_difference_then_check(self, a, b):
        assert a.difference(b) <= a
