"""Unit tests for the atomic domains (Definition 2.1)."""

import datetime
from decimal import Decimal

import pytest

from repro.domains import (
    BOOLEAN,
    DATE,
    INTEGER,
    MONEY,
    REAL,
    STRING,
    TIME,
    TIMESTAMP,
    DomainRegistry,
    default_registry,
    resolve_domain,
)
from repro.errors import DomainValueError, UnknownDomainError


class TestIntegerDomain:
    def test_contains(self):
        assert INTEGER.contains(5)
        assert not INTEGER.contains(5.0)
        assert not INTEGER.contains(True)  # booleans are a separate domain

    def test_normalize_accepts_integral_float(self):
        assert INTEGER.normalize(5.0) == 5
        assert type(INTEGER.normalize(5.0)) is int

    def test_normalize_rejects_fractional(self):
        with pytest.raises(DomainValueError):
            INTEGER.normalize(5.5)

    def test_normalize_rejects_string(self):
        with pytest.raises(DomainValueError):
            INTEGER.normalize("5")

    def test_flags(self):
        assert INTEGER.is_numeric and INTEGER.is_ordered


class TestRealDomain:
    def test_normalize_widens_int(self):
        value = REAL.normalize(2)
        assert value == 2.0 and type(value) is float

    def test_rejects_bool(self):
        with pytest.raises(DomainValueError):
            REAL.normalize(True)


class TestBooleanDomain:
    def test_strict_membership(self):
        assert BOOLEAN.contains(True)
        assert not BOOLEAN.contains(1)

    def test_rejects_int(self):
        with pytest.raises(DomainValueError):
            BOOLEAN.normalize(1)

    def test_ordered_not_numeric(self):
        assert BOOLEAN.is_ordered and not BOOLEAN.is_numeric


class TestStringDomain:
    def test_membership(self):
        assert STRING.contains("beer")
        assert not STRING.contains(1)

    def test_ordered_not_numeric(self):
        assert STRING.is_ordered and not STRING.is_numeric


class TestTemporalDomains:
    def test_date_from_iso(self):
        assert DATE.normalize("1994-02-14") == datetime.date(1994, 2, 14)

    def test_date_from_datetime(self):
        stamp = datetime.datetime(1994, 2, 14, 9, 0)
        assert DATE.normalize(stamp) == datetime.date(1994, 2, 14)

    def test_date_rejects_garbage(self):
        with pytest.raises(DomainValueError):
            DATE.normalize("not-a-date")

    def test_time_from_iso(self):
        assert TIME.normalize("09:30") == datetime.time(9, 30)

    def test_timestamp_from_date(self):
        value = TIMESTAMP.normalize(datetime.date(1994, 2, 14))
        assert value == datetime.datetime(1994, 2, 14, 0, 0)

    def test_timestamp_from_iso(self):
        assert TIMESTAMP.normalize("1994-02-14T09:00") == datetime.datetime(
            1994, 2, 14, 9, 0
        )

    def test_all_ordered(self):
        assert DATE.is_ordered and TIME.is_ordered and TIMESTAMP.is_ordered


class TestMoneyDomain:
    def test_exact_from_float_text_path(self):
        # 1.10 must become exactly Decimal('1.10'), not the float value.
        assert MONEY.normalize(1.10) == Decimal("1.10")

    def test_from_int(self):
        assert MONEY.normalize(3) == Decimal("3.00")

    def test_from_string(self):
        assert MONEY.normalize("12.5") == Decimal("12.50")

    def test_quantized_to_cents(self):
        assert MONEY.normalize(Decimal("1.999")) == Decimal("2.00")

    def test_rejects_garbage(self):
        with pytest.raises(DomainValueError):
            MONEY.normalize("twelve")

    def test_numeric_and_ordered(self):
        assert MONEY.is_numeric and MONEY.is_ordered


class TestDomainIdentity:
    def test_equality_by_name(self):
        from repro.domains import IntegerDomain

        assert INTEGER == IntegerDomain()
        assert INTEGER != REAL

    def test_hashable(self):
        assert len({INTEGER, REAL, INTEGER}) == 2

    def test_repr_is_name(self):
        assert repr(INTEGER) == "integer"


class TestRegistry:
    def test_default_lookup(self):
        assert resolve_domain("integer") is INTEGER
        assert resolve_domain("INT") is INTEGER  # alias, case-insensitive
        assert resolve_domain("varchar") is STRING
        assert resolve_domain("decimal") is MONEY

    def test_unknown_raises_with_listing(self):
        with pytest.raises(UnknownDomainError, match="known domains"):
            resolve_domain("quaternion")

    def test_contains(self):
        assert "real" in default_registry
        assert "quaternion" not in default_registry

    def test_custom_registry(self):
        registry = DomainRegistry()
        registry.register(INTEGER, aliases=("whole",))
        assert registry.resolve("whole") is INTEGER
        assert "real" not in registry

    def test_names_sorted(self):
        registry = DomainRegistry()
        registry.register(REAL)
        registry.register(INTEGER)
        assert registry.names() == ["integer", "real"]

    def test_sample_values_are_members(self):
        for domain in (INTEGER, REAL, BOOLEAN, STRING, DATE, TIME, TIMESTAMP, MONEY):
            for value in domain.sample_values():
                assert domain.contains(value), (domain, value)
