"""Tests for :mod:`repro.cache`: fingerprints, epochs, the two-level
cache, its CLI surface, and the cached-vs-uncached differential matrix.

The load-bearing test is the differential matrix at the bottom: random
query/transition interleavings (from :mod:`repro.testing.exprgen`) run
against two identical databases, one session cached and one not, and
every query result and every post-transition database state must be
bag-equal.  That is the operational form of the cache's correctness
claim — a cache you cannot distinguish from no cache, except by speed.
"""

from __future__ import annotations

import io

import pytest

from repro.algebra import GroupBy, LiteralRelation, RelationRef
from repro.cache import QueryCache, base_relations, canonical_text, fingerprint
from repro.cli import Shell
from repro.database import Database
from repro.errors import EmptyAggregateError
from repro.language import Session
from repro.optimizer import optimize
from repro.testing import ExpressionGenerator, random_environment
from repro.workloads import random_int_relation, tiny_beer_database
from repro.xra import XRAInterpreter


def make_database(env) -> Database:
    """A database holding (copies of) the given named relations."""
    database = Database()
    for name in sorted(env):
        relation = env[name]
        database.create_relation(relation.schema, relation)
    return database


@pytest.fixture
def env():
    return random_environment(tables=3, size=40, degree=2, value_space=5, seed=3)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_structurally_equal_trees_share_a_fingerprint(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        a = t1.select("%1 > 2").project(["%2"])
        b = RelationRef("t1", env["t1"].schema).select("%1 > 2").project(["%2"])
        assert fingerprint(a) == fingerprint(b)

    def test_different_conditions_differ(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        assert fingerprint(t1.select("%1 > 2")) != fingerprint(t1.select("%1 > 3"))

    def test_equivalent_shapes_converge_under_normalization(self, env):
        """σ_φ(E1 ⊎ E2) and σ_φE1 ⊎ σ_φE2 — Theorem 3.2 as a cache key."""
        t1 = RelationRef("t1", env["t1"].schema)
        t2 = RelationRef("t2", env["t2"].schema)
        pushed = t1.select("%1 = 1").union(t2.select("%1 = 1"))
        unpushed = t1.union(t2).select("%1 = 1")
        assert fingerprint(optimize(pushed)) == fingerprint(optimize(unpushed))

    def test_literal_contents_are_part_of_the_key(self, env):
        lit_a = LiteralRelation(random_int_relation(5, seed=1))
        lit_b = LiteralRelation(random_int_relation(5, seed=2))
        lit_a2 = LiteralRelation(random_int_relation(5, seed=1))
        assert fingerprint(lit_a) != fingerprint(lit_b)
        assert fingerprint(lit_a) == fingerprint(lit_a2)

    def test_base_relations_is_the_read_set(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        t2 = RelationRef("t2", env["t2"].schema)
        expr = t1.join(t2, "%1 = %3").select("%2 > 0")
        assert base_relations(expr) == {"t1", "t2"}

    def test_canonical_text_is_deterministic(self, env):
        t1 = RelationRef("t1", env["t1"].schema)
        expr = t1.select("%1 > 2")
        assert canonical_text(expr) == canonical_text(expr)


# ---------------------------------------------------------------------------
# Epochs on the database
# ---------------------------------------------------------------------------


class TestEpochs:
    def test_fresh_relations_start_together(self, env):
        database = make_database(env)
        assert database.epoch("t1") == database.epoch("t2")

    def test_committed_insert_bumps_only_the_target(self, env):
        database = make_database(env)
        session = Session(database)
        before_t1 = database.epoch("t1")
        before_t2 = database.epoch("t2")
        session.insert("t1", LiteralRelation(random_int_relation(3, seed=9)))
        assert database.epoch("t1") == before_t1 + 1
        assert database.epoch("t2") == before_t2

    def test_no_op_transition_does_not_bump(self, env):
        database = make_database(env)
        session = Session(database)
        before = database.epoch("t1")
        # Deleting nothing commits a transition but leaves t1's value
        # unchanged, so its epoch must not move.
        session.delete("t1", session.relation("t1").select("%1 > 999"))
        assert database.epoch("t1") == before

    def test_abort_restores_the_pre_transition_epoch(self, env):
        database = make_database(env)
        session = Session(database)
        before = database.epochs()
        with session.transaction() as txn:
            txn.insert("t1", LiteralRelation(random_int_relation(3, seed=9)))
            txn.abort()
        assert database.epochs() == before

    def test_drop_and_recreate_never_reuses_an_epoch(self, env):
        database = make_database(env)
        created_at = database.epoch("t1")
        schema = database.schema.get("t1")
        database.drop_relation("t1")
        database.create_relation(schema)
        assert database.epoch("t1") > created_at

    def test_direct_set_bumps(self, env):
        database = make_database(env)
        before = database.epoch("t1")
        database.set("t1", random_int_relation(3, seed=5, name="t1"))
        assert database.epoch("t1") == before + 1


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------


class TestQueryCache:
    def test_repeat_query_is_a_hit_and_returns_the_same_object(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        expr = session.relation("t1").select("%1 > 1").project(["%2"])
        first = session.query(expr)
        second = session.query(expr)
        assert second is first
        assert cache.stats.result_hits == 1
        assert cache.stats.result_misses == 1
        assert cache.stats.plan_hits == 1

    def test_equivalent_shapes_share_one_result_entry(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        t1, t2 = session.relation("t1"), session.relation("t2")
        session.query(t1.union(t2).select("%1 = 1"))
        session.query(t1.select("%1 = 1").union(t2.select("%1 = 1")))
        assert cache.stats.result_hits == 1
        assert len(cache) == 1

    def test_write_invalidates_exactly_the_dependents(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        on_t1 = session.relation("t1").select("%1 > 0")
        on_t2 = session.relation("t2").select("%1 > 0")
        session.query(on_t1)
        session.query(on_t2)
        session.insert("t1", LiteralRelation(random_int_relation(2, seed=4)))
        session.query(on_t2)  # untouched dependency: still a hit
        assert cache.stats.result_hits == 1
        session.query(on_t1)  # t1 moved on: recomputed
        assert cache.stats.invalidations == 1
        # Four misses: the two first-time queries, the insert's literal
        # source expression, and the recomputation of on_t1.
        assert cache.stats.result_misses == 4

    def test_temporaries_bypass_the_result_cache(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        with session.transaction() as txn:
            txn.assign("tmp", txn.relation("t1").select("%1 > 1"))
            first = txn.query(txn.relation("tmp").project(["%1"]))
            second = txn.query(txn.relation("tmp").project(["%1"]))
        assert first == second
        assert cache.stats.result_hits == 0
        assert cache.stats.bypasses >= 2

    def test_temporary_assignment_results_never_go_stale(self, env):
        """Two transactions binding the same temp name to different
        contents must not see each other's results through the cache."""
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        probe = None
        with session.transaction() as txn:
            txn.assign("tmp", txn.relation("t1").select("%1 > 1"))
            probe = txn.query(txn.relation("tmp"))
        with session.transaction() as txn:
            txn.assign("tmp", txn.relation("t1").select("%1 <= 1"))
            other = txn.query(txn.relation("tmp"))
        assert len(probe) + len(other) == len(database.get("t1"))

    def test_in_transaction_modified_relations_bypass(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        expr = session.relation("t1").project(["%1"])
        committed = session.query(expr)
        with session.transaction() as txn:
            txn.insert("t1", LiteralRelation(random_int_relation(4, seed=8)))
            inside = txn.query(txn.relation("t1").project(["%1"]))
            # The working state diverged: the cached pre-write result
            # must not be served.
            assert len(inside) == len(committed) + 4
            txn.abort()

    def test_abort_preserves_cached_results(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        expr = session.relation("t1").select("%1 > 0")
        session.query(expr)
        with session.transaction() as txn:
            txn.insert("t1", LiteralRelation(random_int_relation(4, seed=8)))
            txn.abort()
        session.query(expr)
        assert cache.stats.result_hits == 1  # still valid after rollback
        assert cache.stats.invalidations == 0

    def test_empty_alpha_group_by_is_cacheable(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        whole = GroupBy(None, "CNT", None, session.relation("t1"))
        first = session.query(whole)
        second = session.query(whole)
        assert first == second
        assert first.multiplicity((len(database.get("t1")),)) == 1
        assert cache.stats.result_hits == 1

    def test_empty_alpha_group_by_over_empty_relation(self):
        database = Database()
        empty = random_int_relation(0, seed=1, name="empty")
        database.create_relation(empty.schema, empty)
        cached = Session(database, cache=True)
        plain = Session(database)
        whole = GroupBy(None, "CNT", None, cached.relation("empty"))
        assert cached.query(whole) == plain.query(whole)
        assert cached.query(whole) == plain.query(whole)

    def test_reference_engine_sessions_share_results_with_physical(self, env):
        database = make_database(env)
        cache = QueryCache()
        physical = Session(database, cache=cache)
        reference = Session(database, use_physical_engine=False, cache=cache)
        expr = RelationRef("t1", env["t1"].schema).select("%1 > 1")
        a = physical.query(expr)
        b = reference.query(expr)
        assert a == b
        assert cache.stats.result_hits == 1

    def test_parallel_session_shares_the_cache(self, env):
        database = make_database(env)
        cache = QueryCache()
        serial = Session(database, cache=cache)
        parallel = Session(database, cache=cache)
        parallel.set_parallel(2, "serial")
        try:
            expr = RelationRef("t1", env["t1"].schema).select("%1 > 1")
            first = serial.query(expr)
            second = parallel.query(expr)
            assert second is first  # served from cache, no parallel run
            assert cache.stats.result_hits == 1
            # And the reverse direction: a parallel miss feeds a serial hit.
            other = RelationRef("t2", env["t2"].schema).project(["%1"])
            parallel.query(other)
            serial.query(other)
            assert cache.stats.result_hits == 2
        finally:
            parallel.close()

    def test_eviction_respects_the_byte_budget(self, env):
        database = make_database(env)
        cache = QueryCache(max_bytes=2000)
        session = Session(database, cache=cache)
        t1 = session.relation("t1")
        for bound in range(12):
            session.query(t1.select(f"%1 > {bound}"))
        assert cache.nbytes <= 2000
        assert cache.stats.evictions > 0
        assert len(cache) < 12

    def test_oversized_results_are_not_cached(self, env):
        database = make_database(env)
        cache = QueryCache(max_bytes=8)
        session = Session(database, cache=cache)
        session.query(session.relation("t1"))
        assert len(cache) == 0

    def test_max_entries_bounds_the_result_count(self, env):
        database = make_database(env)
        cache = QueryCache(max_entries=3)
        session = Session(database, cache=cache)
        t1 = session.relation("t1")
        for bound in range(8):
            session.query(t1.select(f"%1 > {bound}"))
        assert len(cache) <= 3

    def test_clear_empties_both_levels(self, env):
        database = make_database(env)
        cache = QueryCache()
        session = Session(database, cache=cache)
        session.query(session.relation("t1"))
        cache.clear()
        assert len(cache) == 0
        assert cache.plan_entries == 0
        assert cache.nbytes == 0

    def test_session_cache_argument_forms(self, env):
        database = make_database(env)
        assert Session(database).cache is None
        assert isinstance(Session(database, cache=True).cache, QueryCache)
        shared = QueryCache()
        assert Session(database, cache=shared).cache is shared
        session = Session(database, cache=shared)
        session.set_cache(None)
        assert session.cache is None
        with pytest.raises(TypeError):
            session.set_cache(42)

    def test_slow_log_marks_cache_hits(self, env):
        database = make_database(env)
        session = Session(database, cache=True, slow_query_threshold=10.0)
        expr = session.relation("t1").select("%1 > 1")
        session.query(expr)
        session.query(expr)
        records = list(session.query_log.records)
        assert "(served from cache)" not in (records[0].plan or "")
        assert (records[1].plan or "").endswith("(served from cache)")

    def test_xra_interpreter_shares_the_cache(self, env):
        database = make_database(env)
        cache = QueryCache()
        interpreter = XRAInterpreter(database, cache=cache)
        session = Session(database, cache=cache)
        interpreter.run("? sel[%1 > 1](t1);")
        session.query(session.relation("t1").select("%1 > 1"))
        assert cache.stats.result_hits == 1


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCacheCLI:
    def run_shell(self, text: str):
        out, err = io.StringIO(), io.StringIO()
        shell = Shell(tiny_beer_database(), out=out, err=err)
        shell.run(io.StringIO(text))
        return out.getvalue(), err.getvalue()

    def test_cache_lifecycle(self):
        out, err = self.run_shell(
            ".cache\n"
            ".cache on 8\n"
            "? proj[name](beer);\n"
            "? proj[name](beer);\n"
            ".cache stats\n"
            ".cache clear\n"
            ".cache off\n"
        )
        assert "query cache is off" in out
        assert "query cache on (8 MiB budget)" in out
        assert "result_hits" in out and "result_misses" in out
        assert "plans: 1" in out
        assert "query cache cleared" in out
        assert "query cache off" in out
        assert not err

    def test_cache_hit_counted_through_xra(self):
        out, _err = self.run_shell(
            ".cache on\n"
            "? proj[name](beer);\n"
            "? proj[name](beer);\n"
            ".cache\n"
        )
        assert "hit rate 50%" in out

    def test_bad_arguments_report_usage(self):
        _out, err = self.run_shell(".cache on lots\n.cache bogus\n")
        assert err.count("usage: .cache") == 2

    def test_sql_statements_use_the_shell_cache(self):
        out, _err = self.run_shell(
            ".cache on\n"
            ".sql SELECT name FROM beer\n"
            ".sql SELECT name FROM beer\n"
            ".cache\n"
        )
        assert "hit rate 50%" in out


# ---------------------------------------------------------------------------
# The differential matrix: cached == uncached, always
# ---------------------------------------------------------------------------


def clone_env(env):
    return {name: relation for name, relation in env.items()}


class Driver:
    """Runs one random interleaving against cached and plain twins."""

    def __init__(self, env, seed: int, parallel: bool = False):
        import random

        self.rng = random.Random(seed)
        self.generator = ExpressionGenerator(env, seed=seed, max_depth=4)
        self.cached_db = make_database(clone_env(env))
        self.plain_db = make_database(clone_env(env))
        self.cache = QueryCache()
        self.cached = Session(self.cached_db, cache=self.cache)
        if parallel:
            self.cached.set_parallel(2, "serial")
        self.plain = Session(self.plain_db)
        self.names = sorted(env)

    def close(self):
        self.cached.close()

    def check_query(self):
        expr = self.generator.expression()
        try:
            expected = self.plain.query(expr)
        except EmptyAggregateError:
            with pytest.raises(EmptyAggregateError):
                self.cached.query(expr)
            return
        got = self.cached.query(expr)
        assert got == expected, f"cache diverged on {expr!r}"

    def transition(self):
        name = self.rng.choice(self.names)
        roll = self.rng.random()
        if roll < 0.4:
            addition = LiteralRelation(
                random_int_relation(
                    self.rng.randint(1, 6), seed=self.rng.randint(0, 999)
                )
            )
            self.cached.insert(name, addition)
            self.plain.insert(name, addition)
        elif roll < 0.7:
            bound = self.rng.randint(0, 5)
            self.cached.delete(
                name, self.cached.relation(name).select(f"%1 > {bound}")
            )
            self.plain.delete(
                name, self.plain.relation(name).select(f"%1 > {bound}")
            )
        elif roll < 0.85:
            bound = self.rng.randint(0, 5)
            assignments = ["%1 + 1", "%2"]
            self.cached.update(
                name,
                self.cached.relation(name).select(f"%2 = {bound}"),
                assignments,
            )
            self.plain.update(
                name,
                self.plain.relation(name).select(f"%2 = {bound}"),
                assignments,
            )
        else:
            # A transaction that assigns a temporary, reads it, then
            # aborts — nothing may leak into state or cache.
            for session in (self.cached, self.plain):
                with session.transaction() as txn:
                    txn.assign(
                        "scratch", txn.relation(name).select("%1 > 2")
                    )
                    txn.insert(name, txn.relation("scratch"))
                    txn.query(txn.relation(name))
                    txn.abort()

    def states_agree(self):
        assert self.cached_db.snapshot() == self.plain_db.snapshot()
        assert self.cached_db.logical_time == self.plain_db.logical_time


@pytest.mark.parametrize("seed", range(12))
def test_differential_cached_vs_uncached(env, seed):
    driver = Driver(env, seed=seed)
    try:
        for step in range(14):
            if driver.rng.random() < 0.6:
                driver.check_query()
            else:
                driver.transition()
            driver.states_agree()
    finally:
        driver.close()
    # The workload must actually have exercised the cache.
    assert driver.cache.stats.result_misses > 0


@pytest.mark.parametrize("seed", range(4))
def test_differential_cached_parallel_vs_uncached_serial(env, seed):
    driver = Driver(env, seed=seed + 100, parallel=True)
    try:
        for step in range(10):
            if driver.rng.random() < 0.6:
                driver.check_query()
            else:
                driver.transition()
            driver.states_agree()
    finally:
        driver.close()
