"""Semantics tests for the reference evaluator, per operator definition.

Each test spells out the multiplicity equation it checks, so the file
doubles as an executable restatement of Definitions 3.1, 3.2, and 3.4.
"""

import pytest

from repro.algebra import (
    GroupBy,
    Intersect,
    Join,
    LiteralRelation,
    Product,
    RelationRef,
    Select,
    Union,
    Unique,
)
from repro.domains import INTEGER, STRING
from repro.engine import evaluate
from repro.errors import UnknownRelationError
from repro.relation import Relation
from repro.schema import RelationSchema

S = RelationSchema.of("s", k=INTEGER, v=STRING)


def rel(*rows):
    return Relation(S, rows)


def lit_expr(*rows):
    return LiteralRelation(rel(*rows))


class TestLeaves:
    def test_relation_ref(self):
        env = {"s": rel((1, "a"))}
        assert evaluate(RelationRef("s", S), env) == rel((1, "a"))

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            evaluate(RelationRef("nope", S), {})

    def test_literal(self):
        assert evaluate(lit_expr((1, "a")), {}) == rel((1, "a"))


class TestBasicOperators:
    def test_union_adds(self):
        # (E1 ⊎ E2)(x) = E1(x) + E2(x)
        result = evaluate(
            Union(lit_expr((1, "a"), (1, "a")), lit_expr((1, "a"), (2, "b"))), {}
        )
        assert result.multiplicity((1, "a")) == 3
        assert result.multiplicity((2, "b")) == 1

    def test_difference_monus(self):
        # (E1 − E2)(x) = max(0, E1(x) − E2(x))
        expr = lit_expr((1, "a"), (1, "a"), (2, "b")).difference(
            lit_expr((1, "a"), (2, "b"), (2, "b"))
        )
        result = evaluate(expr, {})
        assert result.multiplicity((1, "a")) == 1
        assert result.multiplicity((2, "b")) == 0

    def test_product_multiplies(self):
        # (E1 × E3)(x ⊕ y) = E1(x) · E3(y)
        left = lit_expr((1, "a"), (1, "a"))
        right = lit_expr((1, "a"), (1, "a"), (1, "a"))
        result = evaluate(Product(left, right), {})
        assert result.multiplicity((1, "a", 1, "a")) == 6

    def test_select_keeps_multiplicity(self):
        # (σφ E)(x) = E(x) if φ(x) else 0
        expr = Select("k = 1", lit_expr((1, "a"), (1, "a"), (2, "b")))
        result = evaluate(expr, {})
        assert result.multiplicity((1, "a")) == 2
        assert (2, "b") not in result

    def test_project_sums(self):
        # (πα E)(y) = Σ_{αx = y} E(x)
        expr = lit_expr((1, "a"), (2, "a"), (2, "a")).project(["v"])
        result = evaluate(expr, {})
        assert result.multiplicity(("a",)) == 3
        assert len(result) == 3  # no duplicate elimination


class TestStandardOperators:
    def test_intersection_min(self):
        expr = Intersect(
            lit_expr((1, "a"), (1, "a"), (2, "b")), lit_expr((1, "a"), (3, "c"))
        )
        result = evaluate(expr, {})
        assert result.multiplicity((1, "a")) == 1
        assert result.distinct_count == 1

    def test_join_multiplicities_multiply(self):
        left = lit_expr((1, "a"), (1, "a"))
        right = lit_expr((1, "x"), (1, "x"), (2, "y"))
        result = evaluate(Join(left, right, "%1 = %3"), {})
        assert result.multiplicity((1, "a", 1, "x")) == 4
        assert len(result) == 4


class TestExtendedOperators:
    def test_extended_project_arithmetic(self):
        expr = lit_expr((2, "a"), (2, "a")).extended_project(["k * 10", "v"])
        result = evaluate(expr, {})
        assert result.multiplicity((20, "a")) == 2

    def test_extended_project_collision_sums(self):
        # Distinct inputs mapping to the same output add multiplicities.
        expr = lit_expr((1, "a"), (2, "a")).extended_project(["v"])
        result = evaluate(expr, {})
        assert result.multiplicity(("a",)) == 2

    def test_unique(self):
        result = evaluate(Unique(lit_expr((1, "a"), (1, "a"))), {})
        assert result.multiplicity((1, "a")) == 1

    def test_groupby(self):
        expr = GroupBy(["v"], "CNT", None, lit_expr((1, "a"), (2, "a"), (3, "b")))
        result = evaluate(expr, {})
        assert result.multiplicity(("a", 2)) == 1
        assert result.multiplicity(("b", 1)) == 1

    def test_groupby_counts_duplicates(self):
        expr = GroupBy(["v"], "CNT", None, lit_expr((1, "a"), (1, "a")))
        result = evaluate(expr, {})
        assert result.multiplicity(("a", 2)) == 1

    def test_groupby_whole_relation(self):
        expr = GroupBy(None, "SUM", "k", lit_expr((1, "a"), (1, "a"), (3, "b")))
        result = evaluate(expr, {})
        assert list(result.pairs()) == [((5,), 1)]

    def test_groupby_empty_input_no_groups(self):
        expr = GroupBy(["v"], "AVG", "k", LiteralRelation(Relation.empty(S)))
        result = evaluate(expr, {})
        assert not result  # no groups, no partial-aggregate trouble


class TestComposition:
    def test_nested_pipeline(self):
        base = lit_expr((1, "a"), (1, "a"), (2, "b"), (3, "b"))
        expr = Unique(base.select("k < 3")).project(["v"])
        result = evaluate(expr, {})
        assert result.multiplicity(("a",)) == 1
        assert result.multiplicity(("b",)) == 1

    def test_environment_shared_across_refs(self):
        env = {"s": rel((1, "a"), (2, "b"))}
        ref = RelationRef("s", S)
        expr = Union(ref, ref)
        result = evaluate(expr, env)
        assert result.multiplicity((1, "a")) == 2
